// Package zorder implements the Z-order (Morton) space-filling curve used by
// the SFC and SFCracker baselines: 3-d cell coordinates with a configurable
// number of bits per dimension (the paper uses 10, i.e. 32-bit codes), plus
// the decomposition of a 3-d cell range into the minimal set of curve
// intervals that exactly cover it. The decomposition is the octant-recursion
// equivalent of the Tropf–Herzog BIGMIN technique: it yields intervals fully
// contained in the query range, eliminating the false-positive explosion of a
// naive (code_lo, code_hi) transformation (paper Fig. 1).
package zorder

// BitsPerDim is the default number of bits per dimension (the paper's
// trade-off between memory and precision).
const BitsPerDim = 10

// MaxCoord returns the largest cell coordinate for the given bit width.
func MaxCoord(bits uint) uint32 { return 1<<bits - 1 }

// spread3 spaces the low 21 bits of v three apart: bit i moves to bit 3i.
func spread3(v uint64) uint64 {
	v &= 0x1fffff
	v = (v | v<<32) & 0x1f00000000ffff
	v = (v | v<<16) & 0x1f0000ff0000ff
	v = (v | v<<8) & 0x100f00f00f00f00f
	v = (v | v<<4) & 0x10c30c30c30c30c3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// compact3 inverts spread3.
func compact3(v uint64) uint64 {
	v &= 0x1249249249249249
	v = (v | v>>2) & 0x10c30c30c30c30c3
	v = (v | v>>4) & 0x100f00f00f00f00f
	v = (v | v>>8) & 0x1f0000ff0000ff
	v = (v | v>>16) & 0x1f00000000ffff
	v = (v | v>>32) & 0x1fffff
	return v
}

// Encode interleaves three cell coordinates into a Morton code. Bit d of each
// coordinate lands at bit 3d+dim: x occupies bits 0,3,6,…, y bits 1,4,7,…,
// z bits 2,5,8,….
func Encode(x, y, z uint32) uint64 {
	return spread3(uint64(x)) | spread3(uint64(y))<<1 | spread3(uint64(z))<<2
}

// Decode inverts Encode.
func Decode(code uint64) (x, y, z uint32) {
	return uint32(compact3(code)), uint32(compact3(code >> 1)), uint32(compact3(code >> 2))
}

// Interval is an inclusive range [Lo, Hi] of Morton codes.
type Interval struct {
	Lo, Hi uint64
}

// Decompose returns the sorted, merged list of curve intervals that exactly
// cover the 3-d cell range [lo, hi] (inclusive per dimension) on a curve with
// the given bits per dimension.
//
// maxIntervals > 0 caps the output size: when an octant cannot be descended
// into without exceeding the cap, its whole curve range is emitted even
// though it only partially overlaps the query. Callers filter candidates
// against the original query anyway, so the cap trades false positives for
// fewer intervals (and fewer cracks in SFCracker).
func Decompose(lo, hi [3]uint32, bits uint, maxIntervals int) []Interval {
	for d := 0; d < 3; d++ {
		if lo[d] > hi[d] {
			return nil
		}
	}
	d := decomposer{qlo: lo, qhi: hi, cap: maxIntervals}
	d.walk(bits, 0, [3]uint32{0, 0, 0})
	return d.out
}

type decomposer struct {
	qlo, qhi [3]uint32
	out      []Interval
	cap      int
}

// walk visits the octree node whose cube has origin at the given cell and
// side 2^level, with Morton-code prefix `prefix` (the node covers codes
// [prefix<<3level, (prefix+1)<<3level − 1]).
func (d *decomposer) walk(level uint, prefix uint64, origin [3]uint32) {
	size := uint32(1) << level
	// Disjoint?
	for dim := 0; dim < 3; dim++ {
		if origin[dim] > d.qhi[dim] || origin[dim]+size-1 < d.qlo[dim] {
			return
		}
	}
	// Fully contained, leaf cell, or capped: emit the node's whole range.
	contained := true
	for dim := 0; dim < 3; dim++ {
		if origin[dim] < d.qlo[dim] || origin[dim]+size-1 > d.qhi[dim] {
			contained = false
			break
		}
	}
	if contained || level == 0 || (d.cap > 0 && len(d.out) >= d.cap) {
		lo := prefix << (3 * level)
		hi := lo + (uint64(1)<<(3*level) - 1)
		// Merge with the previous interval when adjacent (walk order is
		// curve order, so merging is a constant-time append-side check).
		if n := len(d.out); n > 0 && d.out[n-1].Hi+1 == lo {
			d.out[n-1].Hi = hi
			return
		}
		d.out = append(d.out, Interval{Lo: lo, Hi: hi})
		return
	}
	half := size >> 1
	for child := uint64(0); child < 8; child++ {
		co := origin
		if child&1 != 0 {
			co[0] += half
		}
		if child&2 != 0 {
			co[1] += half
		}
		if child&4 != 0 {
			co[2] += half
		}
		d.walk(level-1, prefix<<3|child, co)
	}
}

// BigMin returns the smallest Morton code >= code whose decoded cell lies
// inside the query range [lo, hi], and ok=false when no such code exists.
// It is the classic Tropf–Herzog BIGMIN operation, provided as an
// alternative range-scan primitive (and cross-checked against Decompose in
// tests).
func BigMin(code uint64, lo, hi [3]uint32, bits uint) (uint64, bool) {
	zlo := Encode(lo[0], lo[1], lo[2])
	zhi := Encode(hi[0], hi[1], hi[2])
	var bigmin uint64
	found := false
	// Walk bits from most significant to least, maintaining the candidate
	// search range [zlo', zhi'] per the published algorithm.
	min, max := zlo, zhi
	for bit := int(3*bits) - 1; bit >= 0; bit-- {
		codeBit := (code >> uint(bit)) & 1
		minBit := (min >> uint(bit)) & 1
		maxBit := (max >> uint(bit)) & 1
		switch {
		case codeBit == 0 && minBit == 0 && maxBit == 0:
			// continue
		case codeBit == 0 && minBit == 0 && maxBit == 1:
			bigmin = loadOnes(min, uint(bit))
			found = true
			max = loadZeros(max, uint(bit))
		case codeBit == 0 && minBit == 1 && maxBit == 1:
			return min, true
		case codeBit == 1 && minBit == 0 && maxBit == 0:
			return bigmin, found
		case codeBit == 1 && minBit == 0 && maxBit == 1:
			min = loadOnes(min, uint(bit))
		case codeBit == 1 && minBit == 1 && maxBit == 1:
			// continue
		default:
			// codeBit==0,min==1,max==0 and codeBit==1,min==1,max==0 are
			// impossible for a consistent range.
			return bigmin, found
		}
	}
	// code itself lies within the range.
	return code, true
}

// loadOnes sets bit `bit` of v to 1 and clears the lower bits of the same
// dimension (bits bit-3, bit-6, …) — the "load 10000…" step of BIGMIN.
func loadOnes(v uint64, bit uint) uint64 {
	return (v | 1<<bit) &^ dimMaskBelow(bit)
}

// loadZeros clears bit `bit` of v and sets the lower bits of the same
// dimension — the "load 01111…" step of BIGMIN.
func loadZeros(v uint64, bit uint) uint64 {
	mask := dimMaskBelow(bit)
	return (v &^ (1 << bit)) | mask
}

// dimMaskBelow returns a mask of the bits strictly below `bit` that belong to
// the same dimension (same residue mod 3).
func dimMaskBelow(bit uint) uint64 {
	var mask uint64
	for b := int(bit) - 3; b >= 0; b -= 3 {
		mask |= 1 << uint(b)
	}
	return mask
}
