// Package hilbert implements the 3-d Hilbert space-filling curve as an
// alternative to the Z-order curve used by the paper's SFC baselines.
//
// The paper (Sec. 6.1) chooses Z-order over Hilbert "due to its simplicity",
// while noting that the Hilbert order has slightly better locality. This
// package makes that trade-off measurable: both SFC and SFCracker can be
// configured to use either curve, and the locality difference is asserted by
// tests and quantified by benchmarks.
//
// Encoding uses John Skilling's transposition algorithm ("Programming the
// Hilbert curve", AIP 2004): O(bits) per point with no lookup tables.
//
// Range decomposition exploits the fact that every axis-aligned octant cube
// of side 2^k is visited by the Hilbert curve as one contiguous code range
// of length 8^k; the recursive octant walk therefore works exactly as for
// the Z-curve, except intervals are emitted out of curve order and must be
// sorted and merged at the end.
package hilbert

import (
	"sort"

	"repro/internal/zorder"
)

// Encode maps 3-d cell coordinates (each < 2^bits) to their Hilbert index.
func Encode(x, y, z uint32, bits uint) uint64 {
	X := [3]uint32{x, y, z}
	axesToTranspose(&X, bits)
	// Interleave the transposed coordinates, MSB first, X[0] most significant.
	var code uint64
	for b := int(bits) - 1; b >= 0; b-- {
		for i := 0; i < 3; i++ {
			code = code<<1 | uint64((X[i]>>uint(b))&1)
		}
	}
	return code
}

// Decode inverts Encode.
func Decode(code uint64, bits uint) (x, y, z uint32) {
	var X [3]uint32
	for b := int(bits) - 1; b >= 0; b-- {
		for i := 0; i < 3; i++ {
			bit := (code >> uint((b*3)+(2-i))) & 1
			X[i] |= uint32(bit) << uint(b)
		}
	}
	transposeToAxes(&X, bits)
	return X[0], X[1], X[2]
}

// axesToTranspose converts coordinates to the transposed Hilbert
// representation in place (Skilling's AxestoTranspose).
func axesToTranspose(X *[3]uint32, bits uint) {
	const n = 3
	M := uint32(1) << (bits - 1)
	// Inverse undo.
	for Q := M; Q > 1; Q >>= 1 {
		P := Q - 1
		for i := 0; i < n; i++ {
			if X[i]&Q != 0 {
				X[0] ^= P // invert
			} else {
				t := (X[0] ^ X[i]) & P
				X[0] ^= t
				X[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		X[i] ^= X[i-1]
	}
	var t uint32
	for Q := M; Q > 1; Q >>= 1 {
		if X[n-1]&Q != 0 {
			t ^= Q - 1
		}
	}
	for i := 0; i < n; i++ {
		X[i] ^= t
	}
}

// transposeToAxes inverts axesToTranspose (Skilling's TransposetoAxes).
func transposeToAxes(X *[3]uint32, bits uint) {
	const n = 3
	M := uint32(2) << (bits - 1)
	// Gray decode by H ^ (H/2).
	t := X[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		X[i] ^= X[i-1]
	}
	X[0] ^= t
	// Undo excess work.
	for Q := uint32(2); Q != M; Q <<= 1 {
		P := Q - 1
		for i := n - 1; i >= 0; i-- {
			if X[i]&Q != 0 {
				X[0] ^= P
			} else {
				t = (X[0] ^ X[i]) & P
				X[0] ^= t
				X[i] ^= t
			}
		}
	}
}

// Decompose returns the sorted, merged list of Hilbert-curve intervals that
// exactly cover the cell range [lo, hi] (inclusive per dimension).
// maxIntervals > 0 caps the result size as in zorder.Decompose, trading
// false positives for fewer intervals.
func Decompose(lo, hi [3]uint32, bits uint, maxIntervals int) []zorder.Interval {
	for d := 0; d < 3; d++ {
		if lo[d] > hi[d] {
			return nil
		}
	}
	d := decomposer{qlo: lo, qhi: hi, bits: bits}
	d.walk(bits, [3]uint32{0, 0, 0})
	sort.Slice(d.out, func(i, j int) bool { return d.out[i].Lo < d.out[j].Lo })
	merged := d.out[:0]
	for _, iv := range d.out {
		if n := len(merged); n > 0 && merged[n-1].Hi+1 >= iv.Lo {
			if iv.Hi > merged[n-1].Hi {
				merged[n-1].Hi = iv.Hi
			}
			continue
		}
		merged = append(merged, iv)
	}
	// Apply the cap after merging: fuse across the smallest gaps first so the
	// result over-covers as little extra curve as possible. Supersets are
	// safe — callers filter candidates against the original query. A single
	// gap-threshold pass keeps this O(k log k).
	if maxIntervals > 0 && len(merged) > maxIntervals {
		gaps := make([]uint64, 0, len(merged)-1)
		for i := 1; i < len(merged); i++ {
			gaps = append(gaps, merged[i].Lo-merged[i-1].Hi)
		}
		sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
		// Keep the (maxIntervals-1) largest gaps; merge across the rest.
		toMerge := len(merged) - maxIntervals
		threshold := gaps[toMerge-1]
		strictBelow := sort.Search(len(gaps), func(i int) bool { return gaps[i] >= threshold })
		kept := merged[:1]
		merges := toMerge - strictBelow // budget for gaps exactly at the threshold
		for _, iv := range merged[1:] {
			gap := iv.Lo - kept[len(kept)-1].Hi
			if gap < threshold || (gap == threshold && merges > 0) {
				if gap == threshold {
					merges--
				}
				if iv.Hi > kept[len(kept)-1].Hi {
					kept[len(kept)-1].Hi = iv.Hi
				}
				continue
			}
			kept = append(kept, iv)
		}
		merged = kept
	}
	return merged
}

type decomposer struct {
	qlo, qhi [3]uint32
	bits     uint
	out      []zorder.Interval
}

// walk visits the axis-aligned cube with the given origin and side 2^level.
func (d *decomposer) walk(level uint, origin [3]uint32) {
	size := uint32(1) << level
	for dim := 0; dim < 3; dim++ {
		if origin[dim] > d.qhi[dim] || origin[dim]+size-1 < d.qlo[dim] {
			return
		}
	}
	contained := true
	for dim := 0; dim < 3; dim++ {
		if origin[dim] < d.qlo[dim] || origin[dim]+size-1 > d.qhi[dim] {
			contained = false
			break
		}
	}
	if contained || level == 0 {
		// The cube is one contiguous Hilbert range of length 8^level; find
		// its base by encoding any contained cell and clearing the low bits.
		code := Encode(origin[0], origin[1], origin[2], d.bits)
		span := uint64(1)<<(3*level) - 1
		lo := code &^ span
		d.out = append(d.out, zorder.Interval{Lo: lo, Hi: lo + span})
		return
	}
	half := size >> 1
	for child := 0; child < 8; child++ {
		co := origin
		if child&1 != 0 {
			co[0] += half
		}
		if child&2 != 0 {
			co[1] += half
		}
		if child&4 != 0 {
			co[2] += half
		}
		d.walk(level-1, co)
	}
}
