package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/zorder"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	const bits = 4
	n := uint32(1) << bits
	for x := uint32(0); x < n; x++ {
		for y := uint32(0); y < n; y++ {
			for z := uint32(0); z < n; z++ {
				code := Encode(x, y, z, bits)
				gx, gy, gz := Decode(code, bits)
				if gx != x || gy != y || gz != z {
					t.Fatalf("roundtrip(%d,%d,%d) = %d,%d,%d via code %d", x, y, z, gx, gy, gz, code)
				}
			}
		}
	}
}

func TestEncodeBijective(t *testing.T) {
	const bits = 3
	n := uint32(1) << bits
	total := uint64(1) << (3 * bits)
	seen := make([]bool, total)
	for x := uint32(0); x < n; x++ {
		for y := uint32(0); y < n; y++ {
			for z := uint32(0); z < n; z++ {
				code := Encode(x, y, z, bits)
				if code >= total {
					t.Fatalf("code %d out of range", code)
				}
				if seen[code] {
					t.Fatalf("code %d hit twice", code)
				}
				seen[code] = true
			}
		}
	}
}

// The defining property of the Hilbert curve: consecutive codes map to cells
// that differ by exactly 1 in exactly one dimension.
func TestConsecutiveCodesAreAdjacentCells(t *testing.T) {
	const bits = 4
	total := uint64(1) << (3 * bits)
	px, py, pz := Decode(0, bits)
	for code := uint64(1); code < total; code++ {
		x, y, z := Decode(code, bits)
		diff := abs(int(x)-int(px)) + abs(int(y)-int(py)) + abs(int(z)-int(pz))
		if diff != 1 {
			t.Fatalf("codes %d->%d map to cells (%d,%d,%d)->(%d,%d,%d), L1 distance %d",
				code-1, code, px, py, pz, x, y, z, diff)
		}
		px, py, pz = x, y, z
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Hilbert locality beats Z-order: the mean L1 distance between consecutive
// curve positions is exactly 1 for Hilbert and strictly larger for Z-order
// (the paper's stated reason to even consider Hilbert).
func TestLocalityBeatsZOrder(t *testing.T) {
	const bits = 4
	total := uint64(1) << (3 * bits)
	var zSum int
	zx, zy, zz := zorder.Decode(0)
	for code := uint64(1); code < total; code++ {
		x, y, z := zorder.Decode(code)
		zSum += abs(int(x)-int(zx)) + abs(int(y)-int(zy)) + abs(int(z)-int(zz))
		zx, zy, zz = x, y, z
	}
	meanZ := float64(zSum) / float64(total-1)
	if meanZ <= 1.0 {
		t.Fatalf("expected Z-order mean step > 1, got %g", meanZ)
	}
	// Hilbert mean step is exactly 1 by TestConsecutiveCodesAreAdjacentCells.
}

func TestOctantContiguity(t *testing.T) {
	// Every aligned octant cube must be one contiguous code range — the
	// property Decompose relies on.
	const bits = 4
	for level := uint(1); level <= 2; level++ {
		size := uint32(1) << level
		n := uint32(1) << bits
		for ox := uint32(0); ox < n; ox += size {
			for oy := uint32(0); oy < n; oy += size {
				for oz := uint32(0); oz < n; oz += size {
					span := uint64(1)<<(3*level) - 1
					base := Encode(ox, oy, oz, bits) &^ span
					for x := ox; x < ox+size; x++ {
						for y := oy; y < oy+size; y++ {
							for z := oz; z < oz+size; z++ {
								code := Encode(x, y, z, bits)
								if code < base || code > base+span {
									t.Fatalf("cell (%d,%d,%d) code %d outside cube range [%d,%d]",
										x, y, z, code, base, base+span)
								}
							}
						}
					}
				}
			}
		}
	}
}

func coverage(ivs []zorder.Interval, code uint64) bool {
	for _, iv := range ivs {
		if code >= iv.Lo && code <= iv.Hi {
			return true
		}
	}
	return false
}

func TestDecomposeExactCoverage(t *testing.T) {
	const bits = 4
	rng := rand.New(rand.NewSource(11))
	n := uint32(1) << bits
	for iter := 0; iter < 30; iter++ {
		var lo, hi [3]uint32
		for d := 0; d < 3; d++ {
			a, b := rng.Uint32()%n, rng.Uint32()%n
			if a > b {
				a, b = b, a
			}
			lo[d], hi[d] = a, b
		}
		ivs := Decompose(lo, hi, bits, 0)
		for x := uint32(0); x < n; x++ {
			for y := uint32(0); y < n; y++ {
				for z := uint32(0); z < n; z++ {
					inside := x >= lo[0] && x <= hi[0] && y >= lo[1] && y <= hi[1] && z >= lo[2] && z <= hi[2]
					code := Encode(x, y, z, bits)
					if coverage(ivs, code) != inside {
						t.Fatalf("iter %d: cell (%d,%d,%d) code %d coverage mismatch (want inside=%v)",
							iter, x, y, z, code, inside)
					}
				}
			}
		}
	}
}

func TestDecomposeSortedMerged(t *testing.T) {
	ivs := Decompose([3]uint32{1, 2, 3}, [3]uint32{11, 9, 6}, 4, 0)
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Lo <= ivs[i-1].Hi+1 {
			t.Fatalf("intervals unsorted or unmerged: %v %v", ivs[i-1], ivs[i])
		}
	}
}

func TestDecomposeCap(t *testing.T) {
	lo, hi := [3]uint32{1, 0, 1}, [3]uint32{13, 15, 3}
	exact := Decompose(lo, hi, 4, 0)
	if len(exact) <= 4 {
		t.Skipf("only %d exact intervals; cap not exercised", len(exact))
	}
	capped := Decompose(lo, hi, 4, 4)
	if len(capped) > 4 {
		t.Fatalf("cap violated: %d intervals", len(capped))
	}
	// Capped intervals must still be a superset of the exact coverage.
	n := uint32(1) << 4
	for x := uint32(0); x < n; x++ {
		for y := uint32(0); y < n; y++ {
			for z := uint32(0); z < n; z++ {
				inside := x >= lo[0] && x <= hi[0] && y >= lo[1] && y <= hi[1] && z >= lo[2] && z <= hi[2]
				if inside && !coverage(capped, Encode(x, y, z, 4)) {
					t.Fatalf("capped decomposition misses cell (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
}

func TestDecomposeInverted(t *testing.T) {
	if ivs := Decompose([3]uint32{5, 0, 0}, [3]uint32{4, 9, 9}, 4, 0); ivs != nil {
		t.Fatalf("inverted range should be nil, got %v", ivs)
	}
}

func TestRoundTripQuick(t *testing.T) {
	const bits = 10
	f := func(x, y, z uint32) bool {
		x &= 1<<bits - 1
		y &= 1<<bits - 1
		z &= 1<<bits - 1
		gx, gy, gz := Decode(Encode(x, y, z, bits), bits)
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
