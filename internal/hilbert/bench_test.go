package hilbert

import (
	"testing"

	"repro/internal/zorder"
)

func BenchmarkEncode(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Encode(uint32(i)&1023, uint32(i>>10)&1023, uint32(i>>20)&1023, 10)
	}
	_ = sink
}

// BenchmarkEncodeZOrderReference shows the encoding-cost gap the paper cites
// when choosing Z-order "due to its simplicity".
func BenchmarkEncodeZOrderReference(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += zorder.Encode(uint32(i)&1023, uint32(i>>10)&1023, uint32(i>>20)&1023)
	}
	_ = sink
}

func BenchmarkDecode(b *testing.B) {
	var sink uint32
	for i := 0; i < b.N; i++ {
		x, y, z := Decode(uint64(i)&0x3fffffff, 10)
		sink += x + y + z
	}
	_ = sink
}

func BenchmarkDecompose(b *testing.B) {
	lo, hi := [3]uint32{100, 200, 300}, [3]uint32{140, 240, 340}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Decompose(lo, hi, 10, 256)
	}
}
