// Package wal implements the write-ahead log behind the durable serving
// stack (internal/durable): live updates are appended — and, depending on
// the sync policy, fsynced — before they are acknowledged, so a crash loses
// no acknowledged write. Recovery replays the log on top of the latest
// snapshot; a checkpoint truncates it by starting a fresh log.
//
// The format is a flat sequence of records, each framed as
//
//	uint32 payload length | uint32 CRC-32C of payload | payload
//
// (little-endian). The payload starts with a one-byte opcode (insert or
// delete) followed by the operation's fields. Replay stops cleanly at the
// first torn or corrupt frame — the tail a crash mid-append leaves behind —
// and reports the byte offset of the last intact record so the caller can
// truncate before appending again.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/faultfs"
	"repro/internal/geom"
	"repro/internal/telemetry"
)

// ErrBroken marks a log whose file can no longer be trusted: a failed
// fsync (the kernel may have dropped the very pages that failed to reach
// disk), or a failed append whose partial frame could not be cut back.
// Every later operation fails with it; recovery means retiring the file
// via a checkpoint rotation, not retrying against it.
var ErrBroken = errors.New("wal: log broken by prior I/O failure")

// SyncPolicy controls when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append, before the append returns: no
	// acknowledged write is ever lost, at the cost of one fsync per update.
	SyncAlways SyncPolicy = iota
	// SyncInterval leaves fsync to a caller-driven cadence (the durable
	// store runs a ticker calling Sync): a crash can lose at most the last
	// interval's acknowledged writes. Appends still reach the OS buffer
	// cache before returning, so only a machine crash — not a process
	// crash — can lose them.
	SyncInterval
	// SyncNever never fsyncs explicitly; the OS flushes on its own
	// schedule. For bulk loads and tests.
	SyncNever
)

// Op is a record opcode.
type Op byte

const (
	// OpInsert carries a batch of objects to insert.
	OpInsert Op = 1
	// OpDelete carries one ID plus its locator hint box.
	OpDelete Op = 2
)

// Record is one decoded log entry.
type Record struct {
	Op      Op
	Objects []geom.Object // OpInsert
	ID      int32         // OpDelete
	Hint    geom.Box      // OpDelete

	frameLen int // payload length of the decoded frame (replay bookkeeping)
}

// maxPayload bounds a record payload (1 GiB) so a corrupt length prefix
// cannot force an enormous allocation during replay.
const maxPayload = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Metrics is the instrumentation a Log reports into. Any field may be nil
// (telemetry metrics no-op on nil receivers), as may the whole struct. The
// durable store owns one Metrics value and re-attaches it to each successor
// log a checkpoint rotation creates, so the series survive rotation.
type Metrics struct {
	// Appends counts committed records; AppendedBytes their framed bytes.
	Appends       *telemetry.Counter
	AppendedBytes *telemetry.Counter
	// AppendSeconds is the full commit latency: frame write plus, under
	// SyncAlways, the fsync — the latency an acknowledged update paid.
	AppendSeconds *telemetry.Histogram
	// Fsyncs counts explicit fsyncs; FsyncSeconds their latency, whichever
	// policy (per-append or interval cadence) issued them.
	Fsyncs       *telemetry.Counter
	FsyncSeconds *telemetry.Histogram
}

// Log is an append-only write-ahead log. Append-side methods are safe for
// concurrent use.
type Log struct {
	mu      sync.Mutex
	f       faultfs.File
	policy  SyncPolicy
	buf     []byte // frame scratch, reused across appends
	size    int64
	metrics *Metrics // nil when uninstrumented
	// truncated records how many torn-tail bytes open-time recovery cut
	// from the file — fixed at Create/OpenReplay so callers can log it.
	truncated int64
	// broken is non-nil once the file is untrustworthy (failed fsync, or a
	// failed append whose partial frame could not be cut back). It wraps
	// ErrBroken; every later append or sync returns it.
	broken error
}

// TruncatedBytes reports how many bytes of torn or corrupt tail were cut
// when the log was opened (0 for a clean file). A non-zero value is the
// footprint of a crash mid-append: expected after unclean shutdown, worth
// surfacing in logs either way.
func (l *Log) TruncatedBytes() int64 { return l.truncated }

// SetMetrics attaches (or detaches, with nil) instrumentation.
func (l *Log) SetMetrics(m *Metrics) {
	l.mu.Lock()
	l.metrics = m
	l.mu.Unlock()
}

// Create opens path for appending, creating it if absent. If the file has a
// torn tail (from a crash mid-append), it is truncated to the last intact
// record first — call Replay before Create to apply the surviving records.
func Create(path string, policy SyncPolicy) (*Log, error) {
	return CreateFS(faultfs.OS{}, path, policy)
}

// CreateFS is Create over an injectable file system.
func CreateFS(fsys faultfs.FS, path string, policy SyncPolicy) (*Log, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	good, err := scanIntact(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	torn, err := tornTail(f, good)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{f: f, policy: policy, size: good, truncated: torn}, nil
}

// tornTail measures how far the file extends past the last intact record.
func tornTail(f faultfs.File, good int64) (int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if t := fi.Size() - good; t > 0 {
		return t, nil
	}
	return 0, nil
}

// OpenReplay opens the log at path for appending after replaying it: every
// intact record is passed to apply in order, a torn or corrupt tail is
// truncated, and the returned Log appends after the last intact record —
// recovery and reopen in a single pass over the file. A missing file is
// created empty (apply is never called). It returns the number of records
// replayed alongside the log.
func OpenReplay(path string, policy SyncPolicy, apply func(*Record) error) (*Log, int, error) {
	return OpenReplayFS(faultfs.OS{}, path, policy, apply)
}

// OpenReplayFS is OpenReplay over an injectable file system.
func OpenReplayFS(fsys faultfs.FS, path string, policy SyncPolicy, apply func(*Record) error) (*Log, int, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, err
	}
	br := bufio.NewReaderSize(f, 1<<16)
	var off int64
	n := 0
	var rec Record
	for {
		ok, rerr := readRecord(br, &rec)
		if rerr != nil {
			f.Close()
			return nil, n, rerr
		}
		if !ok {
			break
		}
		if apply != nil {
			if aerr := apply(&rec); aerr != nil {
				f.Close()
				return nil, n, fmt.Errorf("applying wal record %d: %w", n, aerr)
			}
		}
		off += int64(8 + rec.frameLen)
		n++
	}
	torn, err := tornTail(f, off)
	if err != nil {
		f.Close()
		return nil, n, err
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return nil, n, err
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, n, err
	}
	return &Log{f: f, policy: policy, size: off, truncated: torn}, n, nil
}

// Replay reads every intact record of the log at path in order, invoking
// apply on each. A missing file is an empty log. A torn or corrupt tail
// ends replay cleanly; the error return is reserved for I/O failures and
// apply errors.
func Replay(path string, apply func(*Record) error) (int, error) {
	return ReplayFS(faultfs.OS{}, path, apply)
}

// ReplayFS is Replay over an injectable file system.
func ReplayFS(fsys faultfs.FS, path string, apply func(*Record) error) (int, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	n := 0
	var rec Record
	for {
		ok, err := readRecord(br, &rec)
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		if err := apply(&rec); err != nil {
			return n, fmt.Errorf("applying wal record %d: %w", n, err)
		}
		n++
	}
}

// scanIntact returns the offset just past the last intact record.
func scanIntact(f faultfs.File) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	br := bufio.NewReaderSize(f, 1<<16)
	var off int64
	var rec Record
	for {
		ok, err := readRecordRaw(br, &rec, false)
		if err != nil {
			return 0, err
		}
		if !ok {
			return off, nil
		}
		off += int64(8 + rec.frameLen)
	}
}

// AppendInsert logs an insert of objs and returns once the record is
// durable to the configured policy.
func (l *Log) AppendInsert(objs []geom.Object) error {
	need := 1 + 4 + len(objs)*(4+6*8)
	l.mu.Lock()
	defer l.mu.Unlock()
	p := l.payloadBuf(need)
	p = append(p, byte(OpInsert))
	p = appendU32(p, uint32(len(objs)))
	for i := range objs {
		p = appendU32(p, uint32(objs[i].ID))
		p = appendBox(p, objs[i].Box)
	}
	return l.commit(p)
}

// AppendDelete logs a delete and returns once the record is durable to the
// configured policy.
func (l *Log) AppendDelete(id int32, hint geom.Box) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := l.payloadBuf(1 + 4 + 6*8)
	p = append(p, byte(OpDelete))
	p = appendU32(p, uint32(id))
	p = appendBox(p, hint)
	return l.commit(p)
}

// payloadBuf returns the scratch buffer with 8 framing bytes reserved.
func (l *Log) payloadBuf(need int) []byte {
	if cap(l.buf) < 8+need {
		l.buf = make([]byte, 0, 8+need)
	}
	return l.buf[:8]
}

// commit frames the payload (which sits at l.buf[8:]), writes it in one
// Write call, and syncs per policy. Called with mu held.
//
// A failed write self-repairs: whatever prefix of the frame reached the
// file is cut back so the log still ends on its last intact record and a
// retried append starts clean. If the cut itself fails the log is marked
// broken — the file's tail is unknown and nothing may append after it. A
// failed fsync marks the log broken unconditionally (fsync-gate semantics:
// the kernel may have dropped the dirty pages that failed, so a later
// "successful" fsync proves nothing about these bytes).
func (l *Log) commit(p []byte) error {
	if l.broken != nil {
		return l.broken
	}
	payload := p[8:]
	binary.LittleEndian.PutUint32(p[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(p[4:], crc32.Checksum(payload, crcTable))
	l.buf = p[:0]
	var t0 time.Time
	if l.metrics != nil {
		t0 = time.Now()
	}
	if _, err := l.f.Write(p); err != nil {
		if terr := l.truncateBack(); terr != nil {
			l.broken = fmt.Errorf("%w: cutting partial frame: %v (append failed: %v)", ErrBroken, terr, err)
		}
		return fmt.Errorf("wal append: %w", err)
	}
	l.size += int64(len(p))
	if l.policy == SyncAlways {
		if err := l.syncTimed(); err != nil {
			return err
		}
	}
	if m := l.metrics; m != nil {
		m.Appends.Inc()
		m.AppendedBytes.Add(int64(len(p)))
		m.AppendSeconds.ObserveDuration(time.Since(t0))
	}
	return nil
}

// truncateBack restores the file to its last committed length after a
// failed append. Called with mu held.
func (l *Log) truncateBack() error {
	if err := l.f.Truncate(l.size); err != nil {
		return err
	}
	_, err := l.f.Seek(l.size, io.SeekStart)
	return err
}

// syncTimed fsyncs, reporting latency when instrumented. A failure marks
// the log broken. Called with mu held.
func (l *Log) syncTimed() error {
	var t0 time.Time
	m := l.metrics
	if m != nil {
		t0 = time.Now()
	}
	err := l.f.Sync()
	if m != nil {
		m.Fsyncs.Inc()
		m.FsyncSeconds.ObserveDuration(time.Since(t0))
	}
	if err != nil {
		l.broken = fmt.Errorf("%w: fsync failed: %v", ErrBroken, err)
		return fmt.Errorf("wal fsync: %w", err)
	}
	return nil
}

// Sync forces buffered records to stable storage. Used by the SyncInterval
// cadence and before a checkpoint retires the log.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return l.broken
	}
	return l.syncTimed()
}

// Broken reports the error that condemned the log's file, or nil while the
// log is healthy. A broken log cannot be repaired in place; the durable
// store responds by rotating to a fresh log via checkpoint.
func (l *Log) Broken() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.broken
}

// Size returns the current log length in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close syncs (unless the policy is SyncNever, or the log is already
// broken — syncing an untrustworthy file proves nothing) and closes the
// file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.policy != SyncNever && l.broken == nil {
		if err := l.f.Sync(); err != nil {
			l.f.Close()
			return err
		}
	}
	return l.f.Close()
}

func appendU32(p []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(p, b[:]...)
}

func appendF64(p []byte, v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return append(p, b[:]...)
}

func appendBox(p []byte, b geom.Box) []byte {
	for d := 0; d < geom.Dims; d++ {
		p = appendF64(p, b.Min[d])
	}
	for d := 0; d < geom.Dims; d++ {
		p = appendF64(p, b.Max[d])
	}
	return p
}

// readRecord decodes the next record; ok == false means a clean end (EOF or
// torn/corrupt tail).
func readRecord(br *bufio.Reader, rec *Record) (bool, error) {
	return readRecordRaw(br, rec, true)
}

// readRecordRaw is readRecord with optional payload decoding (scanIntact
// only needs frame validation).
func readRecordRaw(br *bufio.Reader, rec *Record, decode bool) (bool, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return false, nil // torn frame header: end of intact log
		}
		return false, err
	}
	plen := binary.LittleEndian.Uint32(hdr[0:])
	want := binary.LittleEndian.Uint32(hdr[4:])
	if plen == 0 || plen > maxPayload {
		return false, nil // nonsense length: corrupt tail
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return false, nil // torn payload
		}
		return false, err
	}
	if crc32.Checksum(payload, crcTable) != want {
		return false, nil // corrupt payload
	}
	rec.frameLen = int(plen)
	if !decode {
		return true, nil
	}
	return decodePayload(payload, rec)
}

func decodePayload(p []byte, rec *Record) (bool, error) {
	op := Op(p[0])
	p = p[1:]
	switch op {
	case OpInsert:
		if len(p) < 4 {
			return false, nil
		}
		n := binary.LittleEndian.Uint32(p)
		p = p[4:]
		if uint64(len(p)) != uint64(n)*(4+6*8) {
			return false, nil
		}
		objs := make([]geom.Object, n)
		for i := range objs {
			objs[i].ID = int32(binary.LittleEndian.Uint32(p))
			p = p[4:]
			p = readBox(p, &objs[i].Box)
		}
		*rec = Record{Op: OpInsert, Objects: objs, frameLen: rec.frameLen}
		return true, nil
	case OpDelete:
		if len(p) != 4+6*8 {
			return false, nil
		}
		id := int32(binary.LittleEndian.Uint32(p))
		p = p[4:]
		var hint geom.Box
		readBox(p, &hint)
		*rec = Record{Op: OpDelete, ID: id, Hint: hint, frameLen: rec.frameLen}
		return true, nil
	default:
		return false, nil // unknown opcode: treat as corruption, stop replay
	}
}

func readBox(p []byte, b *geom.Box) []byte {
	for d := 0; d < geom.Dims; d++ {
		b.Min[d] = math.Float64frombits(binary.LittleEndian.Uint64(p))
		p = p[8:]
	}
	for d := 0; d < geom.Dims; d++ {
		b.Max[d] = math.Float64frombits(binary.LittleEndian.Uint64(p))
		p = p[8:]
	}
	return p
}
