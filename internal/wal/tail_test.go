package wal

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/geom"
)

// TestConcurrentTailFaultInjection is the reader/writer contract of live
// log tailing, table-driven over write-path fault injection: a reader
// follows the file from frame N using the replication leader's per-request
// pattern (open, skip N, stream the intact prefix, close) while a writer
// appends — with faultfs delivering torn writes and ENOSPC underneath the
// appends. The reader must deliver every record exactly once, in order,
// with exactly the payload its position implies: a torn prefix on disk may
// only ever end a read cleanly, never surface as a wrong or duplicated
// record, because appends self-repair before the acknowledged record
// lands. Run under -race: reader and writer genuinely race on the file.
func TestConcurrentTailFaultInjection(t *testing.T) {
	const records = 150
	cases := []struct {
		name  string
		rules []*faultfs.Rule
	}{
		{"clean-link", nil},
		// Every 7th write persists only a prefix: the torn frame is on disk
		// until the append's self-repair truncates it back, and the reader
		// may observe either state.
		{"torn-writes", []*faultfs.Rule{
			{Kind: faultfs.KindShortWrite, Op: faultfs.OpWrite, Every: 7},
		}},
		// Every 9th write fails with ENOSPC persisting nothing; the writer
		// retries. The reader must not notice at all.
		{"enospc", []*faultfs.Rule{
			{Kind: faultfs.KindENOSPC, Op: faultfs.OpWrite, Every: 9},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			ff := faultfs.New(nil, faultfs.Config{Seed: 5, Rules: tc.rules})
			l, err := CreateFS(ff, path, SyncNever)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()

			writerDone := make(chan struct{})
			go func() {
				defer close(writerDone)
				for i := 0; i < records; i++ {
					// Retry the same record until it is acknowledged — the
					// injected faults are transient and self-repairing, so
					// the log must never break.
					for {
						err := l.AppendInsert([]geom.Object{obj(int32(i+1), float64(i+1))})
						if err == nil {
							break
						}
						if l.Broken() != nil {
							t.Errorf("log broke on a transient fault: %v", l.Broken())
							return
						}
					}
				}
			}()

			// Tail: reopen-and-skip per round, the only resume pattern the
			// Reader supports (it is not resumable past a torn frame).
			var rec Record
			n := uint64(0)
			deadline := time.Now().Add(30 * time.Second)
			for n < records {
				if time.Now().After(deadline) {
					t.Fatalf("tail stalled at %d/%d records", n, records)
				}
				rd, err := OpenReader(path)
				if err != nil {
					t.Fatal(err)
				}
				skipped, err := rd.Skip(n)
				if err != nil {
					t.Fatal(err)
				}
				if skipped == n {
					for {
						frame, ok, err := rd.Next()
						if err != nil {
							t.Fatal(err)
						}
						if !ok {
							break // clean end: EOF or a torn append in flight
						}
						ok, derr := NewStreamDecoder(bytes.NewReader(frame)).Next(&rec)
						if derr != nil || !ok {
							t.Fatalf("frame %d undecodable: ok %v err %v", n, ok, derr)
						}
						if len(rec.Objects) != 1 || rec.Objects[0].ID != int32(n+1) {
							t.Fatalf("frame %d carries ID %d, want %d (duplicate or shifted record)",
								n, rec.Objects[0].ID, n+1)
						}
						n++
					}
				} else if skipped > n {
					t.Fatalf("Skip(%d) skipped %d", n, skipped)
				}
				rd.Close()
				time.Sleep(time.Millisecond)
			}
			<-writerDone

			if tc.rules != nil && ff.Injected() == 0 {
				t.Fatal("no faults were injected: the case proved nothing")
			}
			// The finished log replays to exactly the acknowledged records.
			ids, truncated := replayIDs(t, path)
			if truncated != 0 {
				t.Fatalf("TruncatedBytes = %d after self-repairing appends", truncated)
			}
			if len(ids) != records {
				t.Fatalf("replayed %d records, want %d", len(ids), records)
			}
			for i, id := range ids {
				if id != int32(i+1) {
					t.Fatalf("replay record %d has ID %d, want %d", i, id, i+1)
				}
			}
		})
	}
}
