package wal

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/geom"
)

func obj(id int32, x float64) geom.Object {
	return geom.Object{Box: geom.BoxAt(geom.Point{x, x, x}, 2), ID: id}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendInsert([]geom.Object{obj(1, 10), obj(2, 20)}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendDelete(1, geom.BoxAt(geom.Point{10, 10, 10}, 2)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendInsert([]geom.Object{obj(3, 30)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	n, err := Replay(path, func(r *Record) error {
		c := *r
		c.Objects = append([]geom.Object(nil), r.Objects...)
		got = append(got, c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", n)
	}
	if got[0].Op != OpInsert || len(got[0].Objects) != 2 || got[0].Objects[1] != obj(2, 20) {
		t.Fatalf("record 0 = %+v", got[0])
	}
	if got[1].Op != OpDelete || got[1].ID != 1 || got[1].Hint != geom.BoxAt(geom.Point{10, 10, 10}, 2) {
		t.Fatalf("record 1 = %+v", got[1])
	}
	if got[2].Op != OpInsert || got[2].Objects[0].ID != 3 {
		t.Fatalf("record 2 = %+v", got[2])
	}
}

func TestReplayMissingFileIsEmpty(t *testing.T) {
	n, err := Replay(filepath.Join(t.TempDir(), "absent.log"), func(*Record) error {
		t.Fatal("apply called on missing log")
		return nil
	})
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v, want 0, nil", n, err)
	}
}

func TestTornTailTruncatedOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 5; i++ {
		if err := l.AppendInsert([]geom.Object{obj(i, float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: chop bytes off the last record.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	// Replay survives the torn tail...
	n, err := Replay(path, func(*Record) error { return nil })
	if err != nil || n != 4 {
		t.Fatalf("replayed %d records (err=%v), want 4", n, err)
	}
	// ...and reopening truncates it so new appends follow intact records.
	l2, err := Create(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.AppendDelete(99, geom.BoxAt(geom.Point{1, 1, 1}, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	var last *Record
	n, err = Replay(path, func(r *Record) error { c := *r; last = &c; return nil })
	if err != nil || n != 5 {
		t.Fatalf("replayed %d records (err=%v), want 5", n, err)
	}
	if last.Op != OpDelete || last.ID != 99 {
		t.Fatalf("last record = %+v, want the post-reopen delete", last)
	}
}

func TestOpenReplaySinglePassRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 4; i++ {
		if err := l.AppendInsert([]geom.Object{obj(i, float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail, then recover + reopen in one call.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	var ids []int32
	l2, n, err := OpenReplay(path, SyncNever, func(r *Record) error {
		ids = append(ids, r.Objects[0].ID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(ids) != 3 || ids[2] != 2 {
		t.Fatalf("replayed %d records (%v), want the 3 intact ones", n, ids)
	}
	// The handle appends after the truncated tail.
	if err := l2.AppendDelete(7, geom.BoxAt(geom.Point{1, 1, 1}, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	total, err := Replay(path, func(*Record) error { return nil })
	if err != nil || total != 4 {
		t.Fatalf("replayed %d records (err=%v), want 4", total, err)
	}
	// A missing file is created empty, apply never runs.
	l3, n, err := OpenReplay(filepath.Join(t.TempDir(), "fresh.log"), SyncNever, func(*Record) error {
		t.Fatal("apply called on fresh log")
		return nil
	})
	if err != nil || n != 0 {
		t.Fatalf("fresh OpenReplay: n=%d err=%v", n, err)
	}
	l3.Close()
}

func TestCorruptPayloadStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 3; i++ {
		if err := l.AppendInsert([]geom.Object{obj(i, float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	recLen := int(l.Size()) / 3
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[2*recLen+12] ^= 0xff // flip a byte inside the third record's payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := Replay(path, func(*Record) error { return nil })
	if err != nil || n != 2 {
		t.Fatalf("replayed %d records (err=%v), want 2 (corrupt third dropped)", n, err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const perG, goroutines = 50, 8
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := int32(g*perG + i)
				if err := l.AppendInsert([]geom.Object{obj(id, float64(id))}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int32]bool)
	n, err := Replay(path, func(r *Record) error {
		seen[r.Objects[0].ID] = true
		return nil
	})
	if err != nil || n != perG*goroutines {
		t.Fatalf("replayed %d records (err=%v), want %d", n, err, perG*goroutines)
	}
	if len(seen) != perG*goroutines {
		t.Fatalf("saw %d distinct IDs, want %d", len(seen), perG*goroutines)
	}
}
