package wal

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/faultfs"
)

// Reader streams the intact prefix of a log file as raw, CRC-verified
// frames — the replication leader's read side. Unlike Replay it returns the
// frame bytes verbatim (header + payload) so they can be shipped over the
// wire unchanged and re-verified by the receiver; it never decodes the
// payload. A Reader is independent of any Log appending to the same file:
// it stops cleanly at the first torn or corrupt frame (the live append
// boundary, or a crash footprint), and the caller resumes from the next
// frame on a later read.
type Reader struct {
	f   faultfs.File
	br  *bufio.Reader
	buf []byte // frame scratch, reused across calls
}

// OpenReader opens the log at path for raw frame reads.
func OpenReader(path string) (*Reader, error) {
	return OpenReaderFS(faultfs.OS{}, path)
}

// OpenReaderFS is OpenReader over an injectable file system.
func OpenReaderFS(fsys faultfs.FS, path string) (*Reader, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	return &Reader{f: f, br: bufio.NewReaderSize(f, 1<<16)}, nil
}

// Next returns the next intact frame. The returned slice is valid only
// until the next call. ok == false is the clean end of the intact prefix
// (EOF, a torn frame, or a corrupt one — indistinguishable by design, and
// all mean "no further record is trustworthy"); err is reserved for real
// I/O failures.
func (r *Reader) Next() (frame []byte, ok bool, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, false, nil
		}
		return nil, false, err
	}
	plen := binary.LittleEndian.Uint32(hdr[0:])
	want := binary.LittleEndian.Uint32(hdr[4:])
	if plen == 0 || plen > maxPayload {
		return nil, false, nil
	}
	need := 8 + int(plen)
	if cap(r.buf) < need {
		r.buf = make([]byte, need)
	}
	r.buf = r.buf[:need]
	copy(r.buf, hdr[:])
	if _, err := io.ReadFull(r.br, r.buf[8:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, false, nil
		}
		return nil, false, err
	}
	if crc32.Checksum(r.buf[8:], crcTable) != want {
		return nil, false, nil
	}
	return r.buf, true, nil
}

// Skip advances past up to n frames, verifying each, and reports how many
// intact frames it actually skipped. Fewer than n means the intact prefix
// ended early — either the log is shorter than the caller believed or a
// middle record rotted, which the caller must treat as truncated history.
func (r *Reader) Skip(n uint64) (uint64, error) {
	var done uint64
	for done < n {
		_, ok, err := r.Next()
		if err != nil {
			return done, err
		}
		if !ok {
			return done, nil
		}
		done++
	}
	return done, nil
}

// Close releases the file handle.
func (r *Reader) Close() error { return r.f.Close() }

// StreamDecoder decodes framed records from an arbitrary byte stream — the
// replication follower's receive side, reading frames off the wire exactly
// as replay reads them off disk. A torn or corrupt frame ends the stream
// cleanly (ok == false): everything decoded before it was CRC-verified,
// everything after it is untrusted and must be re-fetched.
type StreamDecoder struct {
	br *bufio.Reader
}

// NewStreamDecoder wraps r for record decoding.
func NewStreamDecoder(r io.Reader) *StreamDecoder {
	return &StreamDecoder{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next decodes the next record into rec; ok == false is the clean end of
// the intact stream prefix.
func (d *StreamDecoder) Next(rec *Record) (bool, error) {
	return readRecord(d.br, rec)
}
