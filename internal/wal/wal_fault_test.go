package wal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/geom"
)

// writeRecords builds a clean log of n insert records and returns its path
// plus the byte offset of every frame boundary (offsets[i] = end of record
// i; offsets[n-1] = file size).
func writeRecords(t *testing.T, n int) (string, []int64) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	offsets := make([]int64, n)
	for i := 0; i < n; i++ {
		if err := l.AppendInsert([]geom.Object{obj(int32(i+1), float64(10*(i+1)))}); err != nil {
			t.Fatal(err)
		}
		offsets[i] = l.Size()
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return path, offsets
}

func replayIDs(t *testing.T, path string) (ids []int32, truncated int64) {
	t.Helper()
	l, _, err := OpenReplay(path, SyncNever, func(r *Record) error {
		for i := range r.Objects {
			ids = append(ids, r.Objects[i].ID)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("OpenReplay: %v", err)
	}
	truncated = l.TruncatedBytes()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return ids, truncated
}

// Truncation landing exactly on a frame boundary is not a torn tail at all:
// the file simply ends with one fewer record, and recovery must report zero
// truncated bytes and replay every surviving record.
func TestTornTailExactFrameBoundary(t *testing.T) {
	path, offsets := writeRecords(t, 3)
	if err := os.Truncate(path, offsets[1]); err != nil {
		t.Fatal(err)
	}
	ids, truncated := replayIDs(t, path)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("replayed IDs %v, want [1 2]", ids)
	}
	if truncated != 0 {
		t.Fatalf("TruncatedBytes = %d, want 0 (boundary cut is a clean end)", truncated)
	}
}

// Corruption in the CRC field itself (not the payload) must invalidate the
// frame: the stored checksum no longer matches the intact payload, so
// replay stops before the record and recovery cuts the whole frame.
func TestTornTailCRCFieldCorruption(t *testing.T) {
	path, offsets := writeRecords(t, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Record 2's frame starts at offsets[1]; its CRC field is bytes 4..8 of
	// the frame. Flip one bit of the stored checksum.
	crcOff := offsets[1] + 4
	data[crcOff] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ids, truncated := replayIDs(t, path)
	if len(ids) != 2 || ids[1] != 2 {
		t.Fatalf("replayed IDs %v, want [1 2]", ids)
	}
	wantCut := offsets[2] - offsets[1]
	if truncated != wantCut {
		t.Fatalf("TruncatedBytes = %d, want %d (the corrupt-CRC frame)", truncated, wantCut)
	}
	// Recovery equivalence: after the cut, a fresh append + replay sees the
	// surviving prefix plus the new record, nothing else.
	l, err := Create(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendInsert([]geom.Object{obj(9, 90)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ids, _ = replayIDs(t, path)
	if len(ids) != 3 || ids[2] != 9 {
		t.Fatalf("post-recovery IDs %v, want [1 2 9]", ids)
	}
}

// A zero-length tail file (crash between create and first append, or a
// checkpoint that rotated but never wrote) is a valid empty log.
func TestTornTailZeroLengthFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	ids, truncated := replayIDs(t, path)
	if len(ids) != 0 {
		t.Fatalf("replayed IDs %v from empty file, want none", ids)
	}
	if truncated != 0 {
		t.Fatalf("TruncatedBytes = %d, want 0", truncated)
	}
	// And it must accept appends afterwards.
	l, err := Create(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendInsert([]geom.Object{obj(1, 10)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ids, _ = replayIDs(t, path)
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("IDs after append to empty log = %v, want [1]", ids)
	}
}

// Truncation mid-header (fewer than the 8 framing bytes left) is the
// classic torn tail; recovery reports exactly the dangling byte count.
func TestTornTailMidHeader(t *testing.T) {
	path, offsets := writeRecords(t, 2)
	if err := os.Truncate(path, offsets[0]+5); err != nil {
		t.Fatal(err)
	}
	ids, truncated := replayIDs(t, path)
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("replayed IDs %v, want [1]", ids)
	}
	if truncated != 5 {
		t.Fatalf("TruncatedBytes = %d, want 5", truncated)
	}
}

// A failed append must self-repair: the partial frame is cut back, the
// error surfaces to the caller, and a retry of the same append succeeds
// with the log ending in a fully intact state.
func TestAppendSelfRepairAfterShortWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	ff := faultfs.New(nil, faultfs.Config{Rules: []*faultfs.Rule{
		{Kind: faultfs.KindShortWrite, Op: faultfs.OpWrite, Times: 1},
	}})
	l, err := CreateFS(ff, path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendInsert([]geom.Object{obj(1, 10)}); err == nil {
		t.Fatal("first append must fail (short write injected)")
	}
	if l.Broken() != nil {
		t.Fatalf("self-repair succeeded, log must not be broken: %v", l.Broken())
	}
	// The torn prefix must be gone from disk.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("partial frame not cut back: file is %d bytes", fi.Size())
	}
	// Retry succeeds and the log replays exactly the retried record.
	if err := l.AppendInsert([]geom.Object{obj(1, 10)}); err != nil {
		t.Fatalf("retried append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ids, truncated := replayIDs(t, path)
	if len(ids) != 1 || ids[0] != 1 || truncated != 0 {
		t.Fatalf("after repair: IDs %v truncated %d, want [1] 0", ids, truncated)
	}
}

// ENOSPC fails the append cleanly (nothing written), stays retryable, and
// surfaces an error that classifies as ENOSPC through the wrapping.
func TestAppendENOSPCIsCleanAndRetryable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	ff := faultfs.New(nil, faultfs.Config{Rules: []*faultfs.Rule{
		{Kind: faultfs.KindENOSPC, Op: faultfs.OpWrite, Times: 2},
	}})
	l, err := CreateFS(ff, path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		err := l.AppendInsert([]geom.Object{obj(1, 10)})
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("append %d: want ENOSPC through the wrap, got %v", i, err)
		}
	}
	if l.Broken() != nil {
		t.Fatalf("ENOSPC must not break the log: %v", l.Broken())
	}
	if err := l.AppendInsert([]geom.Object{obj(1, 10)}); err != nil {
		t.Fatalf("append after faults exhausted: %v", err)
	}
	l.Close()
	ids, _ := replayIDs(t, path)
	if len(ids) != 1 {
		t.Fatalf("IDs %v, want exactly the one acked append", ids)
	}
}

// A failed fsync condemns the file: the append that triggered it errors,
// and every later append or sync returns ErrBroken without touching disk.
func TestFsyncFailureBreaksLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	ff := faultfs.New(nil, faultfs.Config{Rules: []*faultfs.Rule{
		{Kind: faultfs.KindErr, Op: faultfs.OpSync, Times: 1},
	}})
	l, err := CreateFS(ff, path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendInsert([]geom.Object{obj(1, 10)}); err == nil {
		t.Fatal("append must surface the fsync failure")
	}
	if !errors.Is(l.Broken(), ErrBroken) {
		t.Fatalf("Broken() = %v, want ErrBroken", l.Broken())
	}
	if err := l.AppendInsert([]geom.Object{obj(2, 20)}); !errors.Is(err, ErrBroken) {
		t.Fatalf("append on broken log = %v, want ErrBroken", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrBroken) {
		t.Fatalf("sync on broken log = %v, want ErrBroken", err)
	}
	l.Close()
}

// Bit-rot inside an appended frame is caught by the CRC on replay: the
// rotted record and everything after it are cut, earlier records survive.
func TestBitRotCaughtByCRC(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	ff := faultfs.New(nil, faultfs.Config{Rules: []*faultfs.Rule{
		// Mutating steps under SyncNever: create=1, open-time truncate=2,
		// then one write per append — rot the second record's write (4).
		{Kind: faultfs.KindBitRot, Op: faultfs.OpWrite, AfterStep: 4, Times: 1},
	}})
	l, err := CreateFS(ff, path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := l.AppendInsert([]geom.Object{obj(int32(i), float64(10*i))}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	l.Close()
	ids, truncated := replayIDs(t, path)
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("IDs %v, want [1] (rotted record 2 and the shadowed record 3 cut)", ids)
	}
	if truncated == 0 {
		t.Fatal("TruncatedBytes must count the rotted tail")
	}
}

// The header length field corrupting to a huge value must not force a huge
// allocation — maxPayload bounds it and replay treats it as a corrupt tail.
func TestCorruptLengthFieldBounded(t *testing.T) {
	path, offsets := writeRecords(t, 2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(data[offsets[0]:], 0xFFFFFFFF)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ids, truncated := replayIDs(t, path)
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("IDs %v, want [1]", ids)
	}
	if truncated != offsets[1]-offsets[0] {
		t.Fatalf("TruncatedBytes = %d, want %d", truncated, offsets[1]-offsets[0])
	}
}
