package scan

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func TestEmpty(t *testing.T) {
	ix := New(nil)
	if ix.Len() != 0 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if res := ix.Query(geom.Box{Max: geom.Point{1, 1, 1}}, nil); len(res) != 0 {
		t.Fatalf("got %d results", len(res))
	}
}

func TestQueryFindsIntersecting(t *testing.T) {
	data := []geom.Object{
		{Box: geom.BoxAt(geom.Point{5, 5, 5}, 2), ID: 1},
		{Box: geom.BoxAt(geom.Point{50, 50, 50}, 2), ID: 2},
		{Box: geom.BoxAt(geom.Point{7, 5, 5}, 2), ID: 3},
	}
	ix := New(data)
	res := ix.Query(geom.NewBox(geom.Point{4, 4, 4}, geom.Point{6, 6, 6}), nil)
	if len(res) != 2 {
		t.Fatalf("res = %v, want IDs 1 and 3", res)
	}
}

func TestCountMatchesQuery(t *testing.T) {
	data := dataset.Uniform(3000, 1)
	ix := New(data)
	q := geom.NewBox(geom.Point{1000, 1000, 1000}, geom.Point{3000, 3000, 3000})
	if got, want := ix.Count(q), len(ix.Query(q, nil)); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}

func TestQueryAppendsToOut(t *testing.T) {
	data := []geom.Object{{Box: geom.BoxAt(geom.Point{1, 1, 1}, 1), ID: 9}}
	ix := New(data)
	out := []int32{7}
	out = ix.Query(geom.BoxAt(geom.Point{1, 1, 1}, 2), out)
	if len(out) != 2 || out[0] != 7 || out[1] != 9 {
		t.Fatalf("out = %v, want [7 9]", out)
	}
}

func TestDataNotMutated(t *testing.T) {
	data := dataset.Uniform(100, 2)
	snapshot := dataset.Clone(data)
	ix := New(data)
	ix.Query(dataset.Universe(), nil)
	for i := range data {
		if data[i] != snapshot[i] {
			t.Fatal("scan mutated data")
		}
	}
}
