// Package scan provides the full-scan baseline: every query tests every
// object. It is both the floor all indexes are measured against and the
// ground-truth oracle for correctness tests.
package scan

import "repro/internal/geom"

// Index answers range queries by scanning the whole dataset.
type Index struct {
	data []geom.Object
}

// New returns a scan "index" over data. The data is not copied and never
// reorganized.
func New(data []geom.Object) *Index { return &Index{data: data} }

// Len returns the number of objects.
func (ix *Index) Len() int { return len(ix.data) }

// Query appends the IDs of all objects intersecting q to out.
func (ix *Index) Query(q geom.Box, out []int32) []int32 {
	for i := range ix.data {
		if ix.data[i].Intersects(q) {
			out = append(out, ix.data[i].ID)
		}
	}
	return out
}

// Count returns the number of objects intersecting q.
func (ix *Index) Count(q geom.Box) int {
	n := 0
	for i := range ix.data {
		if ix.data[i].Intersects(q) {
			n++
		}
	}
	return n
}
