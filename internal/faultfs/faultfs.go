// Package faultfs is the deterministic fault-injection layer under the
// durable serving stack: a small file-system abstraction (FS, File) with a
// pass-through implementation over the os package and a fault-injecting
// wrapper that can fail, corrupt, tear, or "crash" any write-path operation
// the WAL and snapshot writers perform.
//
// The design goal is determinism: a FaultFS counts every mutating operation
// (write, fsync, create, rename, remove, truncate, directory sync) on a
// global step counter, and faults fire either at an exact step (crash
// points) or by seeded pseudo-random rules (chaos soaks). Running the same
// workload against the same configuration injects the same faults at the
// same sites, so a failing interleaving is a test case, not a flake.
//
// # Crash points
//
// Config.CrashStep trips the crash latch at the Nth mutating operation:
// the operation takes partial effect (a write persists a torn prefix;
// metadata operations do nothing) and every subsequent operation fails with
// ErrCrashed without touching the disk — the file-system shadow of a
// process that died at that instant. A harness runs the workload once with
// a counting FaultFS to learn the total step count, then once per step with
// the crash latch set, recovering each time with a real FS and checking the
// recovered state against a never-crashed oracle. That sweep is what turns
// "the checkpoint rotation is crash-safe" from a design argument into a
// tested property of every write site.
//
// The simulation is op-granular, not sector-granular: completed operations
// are assumed durable (the tests drive the store under its fsync-always
// policy, where that assumption matches the acknowledgement contract), and
// the crashing write tears mid-buffer. Reordering of un-fsynced writes is
// not modeled.
//
// # Error faults
//
// Rules inject errors that look exactly like the real thing — ENOSPC on
// write, EIO on fsync, short writes, silent bit-rot — so the store's
// classification and degraded-mode machinery is exercised against the same
// error values the kernel would produce. Every injected fault increments a
// counter surfaced as quasii_fault_injected_total.
package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
)

// File is the handle surface the durability stack needs: sequential and
// positioned I/O, truncation, fsync.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
	Stat() (fs.FileInfo, error)
}

// FS is the file-system surface the WAL and snapshot writers use. Both the
// real implementation (OS) and the fault-injecting wrapper (FaultFS)
// satisfy it.
type FS interface {
	// OpenFile opens with the given flags, like os.OpenFile.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Create truncates-or-creates for writing, like os.Create.
	Create(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	MkdirAll(path string, perm fs.FileMode) error
	// SyncDir fsyncs a directory so renames and creations inside it are
	// durable.
	SyncDir(dir string) error
}

// OS is the pass-through FS over the os package. The zero value is ready to
// use; it is what the durability stack runs on in production.
type OS struct{}

func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (OS) Create(name string) (File, error)             { return os.Create(name) }
func (OS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Op names a mutating file-system operation class for rule matching.
type Op int

const (
	// OpAny matches every mutating operation.
	OpAny Op = iota
	// OpWrite is a File.Write.
	OpWrite
	// OpSync is a File.Sync or FS.SyncDir.
	OpSync
	// OpRename is an FS.Rename.
	OpRename
	// OpCreate is an FS.Create or FS.OpenFile with O_CREATE.
	OpCreate
	// OpRemove is an FS.Remove or FS.RemoveAll.
	OpRemove
	// OpTruncate is a File.Truncate.
	OpTruncate
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpCreate:
		return "create"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	default:
		return "any"
	}
}

// Kind is the fault a matching rule injects.
type Kind int

const (
	// KindErr fails the operation with the rule's Err (default EIO),
	// leaving the disk untouched.
	KindErr Kind = iota
	// KindENOSPC fails a write with syscall.ENOSPC after persisting
	// nothing — the full-disk case classification must treat as transient.
	KindENOSPC
	// KindShortWrite persists a prefix of the buffer and returns EIO with
	// the short count, the torn-write case.
	KindShortWrite
	// KindBitRot flips one bit of the buffer before writing and reports
	// success — silent corruption only a checksum can catch.
	KindBitRot
	// KindCrash persists a torn prefix (for writes; nothing for metadata
	// operations) and trips the crash latch: every later operation fails
	// with ErrCrashed without touching the disk.
	KindCrash
)

// ErrInjected tags every error produced by fault injection, so tests can
// assert provenance with errors.Is while production code classifies the
// unwrapped errno exactly as it would a real one.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by every operation after the crash latch trips.
// It wraps ErrInjected.
var ErrCrashed = &injectedError{msg: "faultfs: simulated crash", err: syscall.EIO}

// injectedError wraps an errno so that errors.Is matches both ErrInjected
// and the underlying errno (syscall.ENOSPC, syscall.EIO, ...).
type injectedError struct {
	msg string
	err error
}

func (e *injectedError) Error() string { return e.msg + ": " + e.err.Error() }
func (e *injectedError) Unwrap() error { return e.err }
func (e *injectedError) Is(target error) bool {
	return target == ErrInjected || errors.Is(e.err, target)
}

func injected(msg string, errno error) error {
	return &injectedError{msg: msg, err: errno}
}

// Rule matches a subset of mutating operations and injects one fault kind.
// All match fields compose with AND; zero values match everything.
type Rule struct {
	// Kind selects the injected fault.
	Kind Kind
	// Op restricts the rule to one operation class (OpAny = all).
	Op Op
	// PathContains restricts the rule to paths containing the substring
	// (e.g. "wal-" or "CURRENT"). Empty matches every path.
	PathContains string
	// AfterStep arms the rule only from that global mutating step on
	// (0 = from the start).
	AfterStep int64
	// Every fires on every Nth matching operation (0 or 1 = every one).
	Every int
	// Prob fires with this probability per matching operation, drawn from
	// the FaultFS's seeded generator (0 = always fire when matched).
	Prob float64
	// Times bounds how often the rule fires (0 = unlimited).
	Times int
	// Err overrides the injected error for KindErr (nil = EIO).
	Err error

	matched int64 // matching ops seen (for Every)
	fired   int64 // times fired (for Times)
}

// Config parameterizes a FaultFS.
type Config struct {
	// Seed drives the pseudo-random rule draws. The same seed over the
	// same workload injects the same faults.
	Seed int64
	// Rules are consulted in order; the first firing rule wins.
	Rules []*Rule
	// CrashStep trips the crash latch at this global mutating step
	// (1-based; 0 = never). It composes with Rules: the latch fires even
	// if no rule matches the operation.
	CrashStep int64
}

// FaultFS wraps an FS with deterministic fault injection. Safe for
// concurrent use; the rule table is guarded by a mutex (the durability
// stack's writers are near-serial, so this is not a hot path).
type FaultFS struct {
	under FS

	mu    sync.Mutex
	rng   *rand.Rand
	rules []*Rule

	step     atomic.Int64
	crashAt  atomic.Int64
	crashed  atomic.Bool
	injected atomic.Int64
}

// New wraps under (nil selects the real OS file system) with cfg's faults.
func New(under FS, cfg Config) *FaultFS {
	if under == nil {
		under = OS{}
	}
	f := &FaultFS{under: under, rules: cfg.Rules}
	f.rng = rand.New(rand.NewSource(cfg.Seed))
	f.crashAt.Store(cfg.CrashStep)
	return f
}

// Steps returns how many mutating operations have passed through, whether
// or not a fault fired on them. A counting pass (no rules, no crash step)
// over a workload yields the step total a crash-point sweep iterates over.
func (f *FaultFS) Steps() int64 { return f.step.Load() }

// Injected returns how many faults have fired.
func (f *FaultFS) Injected() int64 { return f.injected.Load() }

// Crashed reports whether the crash latch has tripped.
func (f *FaultFS) Crashed() bool { return f.crashed.Load() }

// SetRules replaces the rule table — the "operator fixed the disk" lever a
// degraded-mode test flips by installing an empty table.
func (f *FaultFS) SetRules(rules []*Rule) {
	f.mu.Lock()
	f.rules = rules
	f.mu.Unlock()
}

// decide advances the step counter and picks the fault (if any) for one
// mutating operation. It returns the firing rule's kind, or -1 for none.
func (f *FaultFS) decide(op Op, path string) (Kind, error) {
	if f.crashed.Load() {
		return -1, ErrCrashed
	}
	step := f.step.Add(1)
	if at := f.crashAt.Load(); at > 0 && step >= at {
		f.crashed.Store(true)
		f.injected.Add(1)
		return KindCrash, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.rules {
		if r.Op != OpAny && r.Op != op {
			continue
		}
		if r.PathContains != "" && !strings.Contains(path, r.PathContains) {
			continue
		}
		if step < r.AfterStep {
			continue
		}
		r.matched++
		if r.Every > 1 && r.matched%int64(r.Every) != 0 {
			continue
		}
		if r.Prob > 0 && f.rng.Float64() >= r.Prob {
			continue
		}
		if r.Times > 0 && r.fired >= int64(r.Times) {
			continue
		}
		r.fired++
		f.injected.Add(1)
		return r.Kind, nil
	}
	return -1, nil
}

// metaOp runs decide for a metadata (non-write) operation and returns the
// error to inject, or nil to proceed.
func (f *FaultFS) metaOp(op Op, path string) error {
	k, err := f.decide(op, path)
	if err != nil {
		return err
	}
	switch k {
	case KindCrash:
		// The crashing metadata operation takes no effect; the latch is
		// already tripped for everything after it.
		return ErrCrashed
	case KindENOSPC:
		return injected("faultfs: injected ENOSPC", syscall.ENOSPC)
	case KindErr, KindShortWrite, KindBitRot:
		// Short writes and bit-rot have no buffer to tear on a metadata
		// operation; they degrade to a plain EIO.
		return injected("faultfs: injected error on "+op.String()+" "+filepath.Base(path), syscall.EIO)
	}
	return nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if flag&os.O_CREATE != 0 {
		if err := f.metaOp(OpCreate, name); err != nil {
			return nil, err
		}
	} else if f.crashed.Load() {
		return nil, ErrCrashed
	}
	fl, err := f.under.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, under: fl, name: name}, nil
}

func (f *FaultFS) Create(name string) (File, error) {
	if err := f.metaOp(OpCreate, name); err != nil {
		return nil, err
	}
	fl, err := f.under.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, under: fl, name: name}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if f.crashed.Load() {
		return nil, ErrCrashed
	}
	return f.under.ReadFile(name)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.metaOp(OpRename, newpath); err != nil {
		return err
	}
	return f.under.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.metaOp(OpRemove, name); err != nil {
		return err
	}
	return f.under.Remove(name)
}

func (f *FaultFS) RemoveAll(path string) error {
	if err := f.metaOp(OpRemove, path); err != nil {
		return err
	}
	return f.under.RemoveAll(path)
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	if err := f.metaOp(OpCreate, path); err != nil {
		return err
	}
	return f.under.MkdirAll(path, perm)
}

func (f *FaultFS) SyncDir(dir string) error {
	if err := f.metaOp(OpSync, dir); err != nil {
		return err
	}
	return f.under.SyncDir(dir)
}

// faultFile threads per-handle writes, syncs and truncates back through the
// owning FaultFS's fault decisions. Reads pass through (after the crash
// latch, they fail like everything else: a dead process reads nothing).
type faultFile struct {
	fs    *FaultFS
	under File
	name  string
}

func (f *faultFile) Read(p []byte) (int, error) {
	if f.fs.crashed.Load() {
		return 0, ErrCrashed
	}
	return f.under.Read(p)
}

func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	if f.fs.crashed.Load() {
		return 0, ErrCrashed
	}
	return f.under.Seek(offset, whence)
}

func (f *faultFile) Write(p []byte) (int, error) {
	k, err := f.fs.decide(OpWrite, f.name)
	if err != nil {
		return 0, err
	}
	switch k {
	case KindENOSPC:
		return 0, injected("faultfs: injected ENOSPC", syscall.ENOSPC)
	case KindShortWrite:
		n := len(p) / 2
		wrote, _ := f.under.Write(p[:n])
		return wrote, injected("faultfs: injected short write", syscall.EIO)
	case KindBitRot:
		if len(p) > 0 {
			rotted := append([]byte(nil), p...)
			// Deterministic victim bit: derived from the step counter, not
			// the RNG, so a rot rule fires identically across runs.
			i := int(f.fs.step.Load()) % len(rotted)
			rotted[i] ^= 1 << 3
			return f.under.Write(rotted)
		}
		return f.under.Write(p)
	case KindCrash:
		// Tear the crashing write mid-buffer, then the latch (already
		// tripped by decide) blocks everything after it.
		if n := len(p) / 2; n > 0 {
			f.under.Write(p[:n])
			f.under.Sync()
		}
		return 0, ErrCrashed
	case KindErr:
		return 0, injected("faultfs: injected write error", syscall.EIO)
	}
	return f.under.Write(p)
}

func (f *faultFile) Sync() error {
	k, err := f.fs.decide(OpSync, f.name)
	if err != nil {
		return err
	}
	switch k {
	case KindCrash:
		return ErrCrashed
	case KindErr, KindENOSPC, KindShortWrite, KindBitRot:
		return injected("faultfs: injected fsync error", syscall.EIO)
	}
	return f.under.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	k, err := f.fs.decide(OpTruncate, f.name)
	if err != nil {
		return err
	}
	switch k {
	case KindCrash:
		return ErrCrashed
	case KindErr, KindENOSPC, KindShortWrite, KindBitRot:
		return injected("faultfs: injected truncate error", syscall.EIO)
	}
	return f.under.Truncate(size)
}

func (f *faultFile) Stat() (fs.FileInfo, error) {
	if f.fs.crashed.Load() {
		return nil, ErrCrashed
	}
	return f.under.Stat()
}

func (f *faultFile) Close() error {
	// Close always reaches the real file: leaking descriptors would make
	// the sweep harness (hundreds of simulated crashes per process) run out
	// of them, and a real crash closes descriptors too.
	return f.under.Close()
}
