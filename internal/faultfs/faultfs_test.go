package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestOSPassThrough(t *testing.T) {
	dir := t.TempDir()
	var fs FS = OS{}

	if err := fs.MkdirAll(filepath.Join(dir, "a", "b"), 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	name := filepath.Join(dir, "a", "b", "f.dat")
	f, err := fs.Create(name)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := fs.SyncDir(filepath.Join(dir, "a", "b")); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	got, err := fs.ReadFile(name)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	renamed := filepath.Join(dir, "a", "b", "g.dat")
	if err := fs.Rename(name, renamed); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if err := fs.Remove(renamed); err != nil {
		t.Fatalf("Remove: %v", err)
	}
}

func TestInjectENOSPCOnWrite(t *testing.T) {
	dir := t.TempDir()
	ff := New(nil, Config{Rules: []*Rule{{Kind: KindENOSPC, Op: OpWrite}}})

	f, err := ff.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()
	_, err = f.Write([]byte("x"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error must match ErrInjected, got %v", err)
	}
	if ff.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1", ff.Injected())
	}
}

func TestInjectFsyncError(t *testing.T) {
	dir := t.TempDir()
	ff := New(nil, Config{Rules: []*Rule{{Kind: KindErr, Op: OpSync}}})

	f, err := ff.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatalf("Write should pass (rule is sync-only): %v", err)
	}
	err = f.Sync()
	if !errors.Is(err, syscall.EIO) || !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected EIO on fsync, got %v", err)
	}
}

func TestShortWritePersistsPrefix(t *testing.T) {
	dir := t.TempDir()
	ff := New(nil, Config{Rules: []*Rule{{Kind: KindShortWrite, Op: OpWrite, Times: 1}}})

	name := filepath.Join(dir, "f")
	f, err := ff.Create(name)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	payload := []byte("0123456789")
	n, err := f.Write(payload)
	if err == nil {
		t.Fatal("short write must return an error")
	}
	if n != len(payload)/2 {
		t.Fatalf("short write persisted %d bytes, want %d", n, len(payload)/2)
	}
	f.Close()
	got, _ := os.ReadFile(name)
	if string(got) != "01234" {
		t.Fatalf("on-disk prefix = %q, want %q", got, "01234")
	}
}

func TestBitRotFlipsOneBitSilently(t *testing.T) {
	dir := t.TempDir()
	ff := New(nil, Config{Rules: []*Rule{{Kind: KindBitRot, Op: OpWrite, Times: 1}}})

	name := filepath.Join(dir, "f")
	f, err := ff.Create(name)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	payload := []byte("0123456789")
	n, err := f.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("bit-rot write must report success, got n=%d err=%v", n, err)
	}
	f.Close()
	got, _ := os.ReadFile(name)
	if len(got) != len(payload) {
		t.Fatalf("rotted write length %d, want %d", len(got), len(payload))
	}
	diff := 0
	for i := range got {
		if got[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ after bit-rot, want exactly 1", diff)
	}
}

func TestCrashLatchBlocksEverythingAfter(t *testing.T) {
	dir := t.TempDir()
	// Step 1 = Create, step 2 = first Write: crash on the write.
	ff := New(nil, Config{CrashStep: 2})

	name := filepath.Join(dir, "f")
	f, err := ff.Create(name)
	if err != nil {
		t.Fatalf("Create (pre-crash) must succeed: %v", err)
	}
	_, err = f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash-step write: want ErrCrashed, got %v", err)
	}
	if !ff.Crashed() {
		t.Fatal("latch must be tripped")
	}
	// Torn prefix of the crashing write persisted.
	got, _ := os.ReadFile(name)
	if string(got) != "01234" {
		t.Fatalf("torn prefix = %q, want %q", got, "01234")
	}
	// Everything after the crash fails, reads included, with no effect.
	if _, err := f.Write([]byte("more")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: want ErrCrashed, got %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: want ErrCrashed, got %v", err)
	}
	if _, err := ff.Create(filepath.Join(dir, "g")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create: want ErrCrashed, got %v", err)
	}
	if err := ff.Rename(name, name+".x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: want ErrCrashed, got %v", err)
	}
	if _, err := ff.ReadFile(name); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read: want ErrCrashed, got %v", err)
	}
	if _, err := os.Stat(name + ".x"); !os.IsNotExist(err) {
		t.Fatal("post-crash rename must have no side effect")
	}
}

func TestStepCountingIsDeterministic(t *testing.T) {
	workload := func(fs FS, dir string) {
		f, err := fs.Create(filepath.Join(dir, "w"))
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		for i := 0; i < 3; i++ {
			if _, err := f.Write([]byte("chunk")); err != nil {
				t.Fatalf("Write: %v", err)
			}
			if err := f.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
		}
		f.Close()
		if err := fs.Rename(filepath.Join(dir, "w"), filepath.Join(dir, "w2")); err != nil {
			t.Fatalf("Rename: %v", err)
		}
		if err := fs.SyncDir(dir); err != nil {
			t.Fatalf("SyncDir: %v", err)
		}
	}

	a := New(nil, Config{})
	workload(a, t.TempDir())
	b := New(nil, Config{})
	workload(b, t.TempDir())
	if a.Steps() != b.Steps() {
		t.Fatalf("same workload, different step counts: %d vs %d", a.Steps(), b.Steps())
	}
	// create + 3*(write+sync) + rename + syncdir = 9 mutating steps.
	if a.Steps() != 9 {
		t.Fatalf("Steps() = %d, want 9", a.Steps())
	}
}

func TestRulePathAndEveryMatching(t *testing.T) {
	dir := t.TempDir()
	ff := New(nil, Config{Rules: []*Rule{
		{Kind: KindErr, Op: OpWrite, PathContains: "wal-", Every: 2},
	}})

	wal, err := ff.Create(filepath.Join(dir, "wal-000001.log"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	other, err := ff.Create(filepath.Join(dir, "snapshot.dat"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer wal.Close()
	defer other.Close()

	// Non-matching path never faults.
	for i := 0; i < 4; i++ {
		if _, err := other.Write([]byte("x")); err != nil {
			t.Fatalf("snapshot write %d: %v", i, err)
		}
	}
	// Matching path faults on every 2nd write.
	var errs int
	for i := 0; i < 4; i++ {
		if _, err := wal.Write([]byte("x")); err != nil {
			errs++
		}
	}
	if errs != 2 {
		t.Fatalf("Every=2 over 4 writes injected %d errors, want 2", errs)
	}
}

func TestSeededProbIsDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		dir := t.TempDir()
		ff := New(nil, Config{Seed: seed, Rules: []*Rule{
			{Kind: KindErr, Op: OpWrite, Prob: 0.5},
		}})
		f, err := ff.Create(filepath.Join(dir, "f"))
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		defer f.Close()
		out := make([]bool, 32)
		for i := range out {
			_, err := f.Write([]byte("x"))
			out[i] = err != nil
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at write %d", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault patterns (suspicious)")
	}
}

func TestSetRulesClearsFaults(t *testing.T) {
	dir := t.TempDir()
	ff := New(nil, Config{Rules: []*Rule{{Kind: KindErr, Op: OpWrite}}})
	f, err := ff.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("rule must fire before SetRules(nil)")
	}
	ff.SetRules(nil)
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("write must succeed after faults cleared: %v", err)
	}
}

func TestTimesBoundsInjections(t *testing.T) {
	dir := t.TempDir()
	ff := New(nil, Config{Rules: []*Rule{{Kind: KindErr, Op: OpWrite, Times: 3}}})
	f, err := ff.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()
	var errs int
	for i := 0; i < 10; i++ {
		if _, err := f.Write([]byte("x")); err != nil {
			errs++
		}
	}
	if errs != 3 {
		t.Fatalf("Times=3 injected %d errors, want 3", errs)
	}
	if ff.Injected() != 3 {
		t.Fatalf("Injected() = %d, want 3", ff.Injected())
	}
}
