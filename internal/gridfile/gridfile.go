// Package gridfile implements a two-level grid in the spirit of the
// two-level grid file (Hinrichs, BIT 1985), which the QUASII paper's related
// work (Sec. 7.2) presents as the classic answer to the uniform grid's
// configuration problem: a coarse root grid whose cells each carry their own
// sub-grid, with the sub-grid resolution chosen from the cell's population.
// Dense regions get fine partitioning, empty regions stay coarse — the skew
// adaptivity a single-resolution grid lacks (paper Fig. 6b).
//
// This is the main-memory adaptation: the original structure optimizes disk
// buckets; here both levels are in-memory cell directories. Objects are
// assigned by center, so queries are extended by half the maximum object
// extent (query extension, as elsewhere in this module).
package gridfile

import (
	"math"

	"repro/internal/geom"
)

// Config controls the two-level grid.
type Config struct {
	// RootPartitions is the coarse grid resolution per dimension. Values < 1
	// mean 8.
	RootPartitions int
	// TargetPerCell is the desired number of objects per finest sub-cell;
	// each root cell picks its sub-grid resolution as
	// ceil((population/target)^(1/3)), capped by MaxSubPartitions.
	// Values < 1 mean 16.
	TargetPerCell int
	// MaxSubPartitions caps the per-cell sub-grid resolution. Values < 1
	// mean 32.
	MaxSubPartitions int
	// Universe is the box the grid covers. Empty means derived from data.
	Universe geom.Box
}

func (c *Config) defaults(data []geom.Object) {
	if c.RootPartitions < 1 {
		c.RootPartitions = 8
	}
	if c.TargetPerCell < 1 {
		c.TargetPerCell = 16
	}
	if c.MaxSubPartitions < 1 {
		c.MaxSubPartitions = 32
	}
	if c.Universe.IsEmpty() || c.Universe.Volume() == 0 {
		u := geom.MBB(data)
		if u.IsEmpty() {
			u = geom.Box{Max: geom.Point{1, 1, 1}}
		}
		c.Universe = u
	}
}

// cell is one root cell: either a plain object list (sparse cells) or a
// sub-grid directory (dense cells).
type cell struct {
	objs  []int32   // sparse: direct object list (subParts == 1)
	sub   [][]int32 // dense: sub-grid directory, len subParts^3
	parts int       // sub-grid resolution (1 = no sub-grid)
	box   geom.Box  // the cell's region of the universe
}

// Index is the two-level grid.
type Index struct {
	data     []geom.Object
	universe geom.Box
	rootN    int
	scale    [3]float64
	cells    []cell
	maxExt   geom.Point
}

// New builds a two-level grid over data (referenced, not copied).
func New(data []geom.Object, cfg Config) *Index {
	cfg.defaults(data)
	ix := &Index{
		data:     data,
		universe: cfg.Universe,
		rootN:    cfg.RootPartitions,
		maxExt:   geom.MaxExtents(data),
	}
	for d := 0; d < geom.Dims; d++ {
		span := ix.universe.Max[d] - ix.universe.Min[d]
		if span <= 0 {
			span = 1
		}
		ix.scale[d] = float64(ix.rootN) / span
	}
	n := ix.rootN
	ix.cells = make([]cell, n*n*n)

	// Pass 1: count objects per root cell.
	counts := make([]int, len(ix.cells))
	for i := range data {
		counts[ix.rootIndex(data[i].Center())]++
	}
	// Decide per-cell sub-resolution and initialize directories.
	for c := range ix.cells {
		parts := 1
		if counts[c] > cfg.TargetPerCell {
			parts = int(math.Ceil(math.Cbrt(float64(counts[c]) / float64(cfg.TargetPerCell))))
			if parts > cfg.MaxSubPartitions {
				parts = cfg.MaxSubPartitions
			}
		}
		ix.cells[c].parts = parts
		ix.cells[c].box = ix.rootCellBox(c)
		if parts > 1 {
			ix.cells[c].sub = make([][]int32, parts*parts*parts)
		}
	}
	// Pass 2: place objects.
	for i := range data {
		center := data[i].Center()
		c := &ix.cells[ix.rootIndex(center)]
		if c.parts == 1 {
			c.objs = append(c.objs, int32(i))
			continue
		}
		s := c.subIndex(center)
		c.sub[s] = append(c.sub[s], int32(i))
	}
	return ix
}

// rootIndex maps a point to its root cell index (clamped).
func (ix *Index) rootIndex(p geom.Point) int {
	var c [3]int
	for d := 0; d < geom.Dims; d++ {
		v := int((p[d] - ix.universe.Min[d]) * ix.scale[d])
		if v < 0 {
			v = 0
		}
		if v >= ix.rootN {
			v = ix.rootN - 1
		}
		c[d] = v
	}
	return (c[2]*ix.rootN+c[1])*ix.rootN + c[0]
}

// rootCellBox returns the region of root cell index c.
func (ix *Index) rootCellBox(c int) geom.Box {
	x := c % ix.rootN
	y := (c / ix.rootN) % ix.rootN
	z := c / (ix.rootN * ix.rootN)
	var b geom.Box
	for d, v := range [3]int{x, y, z} {
		span := (ix.universe.Max[d] - ix.universe.Min[d]) / float64(ix.rootN)
		b.Min[d] = ix.universe.Min[d] + float64(v)*span
		b.Max[d] = b.Min[d] + span
	}
	return b
}

// subIndex maps a point to the cell's sub-grid index (clamped).
func (c *cell) subIndex(p geom.Point) int {
	var s [3]int
	for d := 0; d < geom.Dims; d++ {
		span := c.box.Max[d] - c.box.Min[d]
		if span <= 0 {
			span = 1
		}
		v := int((p[d] - c.box.Min[d]) / span * float64(c.parts))
		if v < 0 {
			v = 0
		}
		if v >= c.parts {
			v = c.parts - 1
		}
		s[d] = v
	}
	return (s[2]*c.parts+s[1])*c.parts + s[0]
}

// Len returns the number of indexed objects.
func (ix *Index) Len() int { return len(ix.data) }

// SubResolutions returns the distribution of sub-grid resolutions over root
// cells (resolution -> count). Exposes the structure's skew adaptivity.
func (ix *Index) SubResolutions() map[int]int {
	out := make(map[int]int)
	for c := range ix.cells {
		out[ix.cells[c].parts]++
	}
	return out
}

// Query appends the IDs of all objects intersecting q to out.
func (ix *Index) Query(q geom.Box, out []int32) []int32 {
	if q.IsEmpty() || len(ix.data) == 0 {
		return out
	}
	var half geom.Point
	for d := 0; d < geom.Dims; d++ {
		half[d] = ix.maxExt[d] / 2
	}
	search := q.Expand(half)

	lo := ix.rootCoords(search.Min)
	hi := ix.rootCoords(search.Max)
	for z := lo[2]; z <= hi[2]; z++ {
		for y := lo[1]; y <= hi[1]; y++ {
			for x := lo[0]; x <= hi[0]; x++ {
				c := &ix.cells[(z*ix.rootN+y)*ix.rootN+x]
				out = ix.queryCell(c, q, search, out)
			}
		}
	}
	return out
}

func (ix *Index) rootCoords(p geom.Point) [3]int {
	var c [3]int
	for d := 0; d < geom.Dims; d++ {
		v := int((p[d] - ix.universe.Min[d]) * ix.scale[d])
		if v < 0 {
			v = 0
		}
		if v >= ix.rootN {
			v = ix.rootN - 1
		}
		c[d] = v
	}
	return c
}

func (ix *Index) queryCell(c *cell, q, search geom.Box, out []int32) []int32 {
	if c.parts == 1 {
		for _, idx := range c.objs {
			if ix.data[idx].Intersects(q) {
				out = append(out, ix.data[idx].ID)
			}
		}
		return out
	}
	// Restrict to the sub-cells the (extended) query touches.
	inter := c.box.Intersection(search)
	if inter.IsEmpty() {
		return out
	}
	slo := c.subCoords(inter.Min)
	shi := c.subCoords(inter.Max)
	for z := slo[2]; z <= shi[2]; z++ {
		for y := slo[1]; y <= shi[1]; y++ {
			for x := slo[0]; x <= shi[0]; x++ {
				for _, idx := range c.sub[(z*c.parts+y)*c.parts+x] {
					if ix.data[idx].Intersects(q) {
						out = append(out, ix.data[idx].ID)
					}
				}
			}
		}
	}
	return out
}

func (c *cell) subCoords(p geom.Point) [3]int {
	var s [3]int
	for d := 0; d < geom.Dims; d++ {
		span := c.box.Max[d] - c.box.Min[d]
		if span <= 0 {
			span = 1
		}
		v := int((p[d] - c.box.Min[d]) / span * float64(c.parts))
		if v < 0 {
			v = 0
		}
		if v >= c.parts {
			v = c.parts - 1
		}
		s[d] = v
	}
	return s
}
