package gridfile

import (
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/scan"
	"repro/internal/workload"
)

func sortedIDs(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmpty(t *testing.T) {
	ix := New(nil, Config{})
	if res := ix.Query(geom.Box{Max: geom.Point{1, 1, 1}}, nil); len(res) != 0 {
		t.Fatalf("got %d results", len(res))
	}
}

func TestMatchesScanUniform(t *testing.T) {
	data := dataset.Uniform(8000, 701)
	oracle := scan.New(data)
	ix := New(data, Config{Universe: dataset.Universe()})
	for qi, q := range workload.Uniform(dataset.Universe(), 80, 1e-3, 702) {
		got := sortedIDs(ix.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(got), len(want))
		}
	}
}

func TestMatchesScanSkewed(t *testing.T) {
	data := dataset.Neuro(8000, 703, dataset.NeuroConfig{})
	oracle := scan.New(data)
	ix := New(data, Config{Universe: dataset.Universe()})
	for qi, q := range workload.ClusteredOn(dataset.Universe(), data, 4, 20, 1e-4, 200, 704) {
		got := sortedIDs(ix.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(got), len(want))
		}
	}
}

func TestMatchesScanLargeObjects(t *testing.T) {
	data := dataset.RandomBoxes(1500, 705, dataset.Universe())
	oracle := scan.New(data)
	ix := New(data, Config{Universe: dataset.Universe()})
	for qi, q := range workload.Uniform(dataset.Universe(), 40, 1e-3, 706) {
		got := sortedIDs(ix.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(got), len(want))
		}
	}
}

func TestAdaptsToSkew(t *testing.T) {
	// On skewed data, sub-grid resolutions must vary: dense cells finer than
	// sparse ones.
	data := dataset.Neuro(30000, 707, dataset.NeuroConfig{Clusters: 5})
	ix := New(data, Config{Universe: dataset.Universe()})
	res := ix.SubResolutions()
	if len(res) < 2 {
		t.Fatalf("expected varied sub-resolutions, got %v", res)
	}
	if res[1] == 0 {
		t.Fatalf("expected some sparse cells without sub-grids, got %v", res)
	}
	finer := 0
	for parts, count := range res {
		if parts > 1 {
			finer += count
		}
	}
	if finer == 0 {
		t.Fatalf("expected some dense cells with sub-grids, got %v", res)
	}
}

func TestUniformDataMostlyUniformResolution(t *testing.T) {
	data := dataset.Uniform(20000, 708)
	ix := New(data, Config{Universe: dataset.Universe(), RootPartitions: 4})
	res := ix.SubResolutions()
	// With uniform density all 64 root cells hold ~312 objects; each should
	// pick the same (or adjacent) sub-resolution.
	if len(res) > 2 {
		t.Fatalf("uniform data produced %d distinct resolutions: %v", len(res), res)
	}
}

func TestConfigDefaults(t *testing.T) {
	data := dataset.Uniform(100, 709)
	ix := New(data, Config{}) // all defaults, universe derived
	if got := ix.Query(dataset.Universe(), nil); len(got) != 100 {
		t.Fatalf("universe query found %d of 100", len(got))
	}
}

func TestDegenerateAllSamePoint(t *testing.T) {
	b := geom.BoxAt(geom.Point{50, 50, 50}, 1)
	data := make([]geom.Object, 500)
	for i := range data {
		data[i] = geom.Object{Box: b, ID: int32(i)}
	}
	ix := New(data, Config{Universe: dataset.Universe()})
	res := ix.Query(geom.BoxAt(geom.Point{50, 50, 50}, 2), nil)
	if len(res) != 500 {
		t.Fatalf("found %d of 500", len(res))
	}
}
