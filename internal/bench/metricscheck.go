// Server-side cross-check for load-generation runs: scrape GET /metrics
// after the run, parse the exposition strictly, and compare the server's
// own request accounting and latency histograms against what the client
// measured. A server whose /metrics output is malformed, missing expected
// series, or inconsistent with the traffic just driven fails the run — the
// observability layer is validated by the same oracle flow that validates
// query results.

package bench

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/telemetry"
)

// MetricsReport is the server-side view of a finished loadgen run.
type MetricsReport struct {
	// QueryRequests is quasii_http_requests_total{endpoint="query"}.
	QueryRequests float64
	// Server-side latency quantiles, interpolated from the
	// quasii_http_request_duration_seconds{endpoint="query"} buckets.
	ServerP50, ServerP95, ServerP99 time.Duration
	// SlicesRefined and SharedRatio are the convergence observables
	// (quasii_core_slices_refined_total, quasii_core_shared_ratio).
	SlicesRefined float64
	SharedRatio   float64
	// DurableChecked is true when the target runs a durable store (the
	// quasii_durable_degraded gauge is on the scrape); the failure-model
	// series below are then required and cross-checked.
	DurableChecked bool
	// Degraded is quasii_durable_degraded: 1 while the store is in
	// read-only degraded mode, 0 otherwise (any other value is a Problem).
	Degraded float64
	// WALRetries is quasii_wal_retry_total, FaultsInjected is
	// quasii_fault_injected_total (0 on a real filesystem).
	WALRetries     float64
	FaultsInjected float64
	// Problems lists cross-check violations; empty means consistent.
	Problems []string
}

// ScrapeMetrics fetches and strictly parses baseURL/metrics, extracts the
// serving and convergence series, and cross-checks them against res. It
// returns an error when the scrape cannot be fetched or parsed (which a
// caller should treat as a failed run); internal inconsistencies land in
// Problems instead.
func ScrapeMetrics(client *http.Client, baseURL string, res *LoadgenResult) (*MetricsReport, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("fetching /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics answered %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("reading /metrics: %w", err)
	}
	sc, err := telemetry.ParseText(string(body))
	if err != nil {
		return nil, fmt.Errorf("unparsable /metrics exposition: %w", err)
	}

	r := &MetricsReport{}
	queryLbl := map[string]string{"endpoint": "query"}
	var ok bool
	if r.QueryRequests, ok = sc.Value("quasii_http_requests_total", queryLbl); !ok {
		r.Problems = append(r.Problems, `quasii_http_requests_total{endpoint="query"} missing`)
	}
	quantile := func(q float64) time.Duration {
		v, ok := sc.HistogramQuantile("quasii_http_request_duration_seconds", queryLbl, q)
		if !ok {
			r.Problems = append(r.Problems,
				fmt.Sprintf("request duration p%g not computable from histogram buckets", q*100))
			return 0
		}
		return time.Duration(v * float64(time.Second))
	}
	r.ServerP50 = quantile(0.50)
	r.ServerP95 = quantile(0.95)
	r.ServerP99 = quantile(0.99)
	if r.SlicesRefined, ok = sc.Value("quasii_core_slices_refined_total", nil); !ok {
		r.Problems = append(r.Problems, "quasii_core_slices_refined_total missing")
	}
	if r.SharedRatio, ok = sc.Value("quasii_core_shared_ratio", nil); !ok {
		r.Problems = append(r.Problems, "quasii_core_shared_ratio missing")
	}

	// Failure-model series: present iff the server runs a durable store.
	// The degraded gauge is the sentinel; once it is there, the retry and
	// fault-injection counters must be too — a chaos or fault-injection run
	// that cannot observe them is not validating what it thinks it is.
	if r.Degraded, ok = sc.Value("quasii_durable_degraded", nil); ok {
		r.DurableChecked = true
		if r.Degraded != 0 && r.Degraded != 1 {
			r.Problems = append(r.Problems, fmt.Sprintf(
				"quasii_durable_degraded = %g, want 0 or 1", r.Degraded))
		}
		if r.WALRetries, ok = sc.Value("quasii_wal_retry_total", nil); !ok {
			r.Problems = append(r.Problems, "quasii_wal_retry_total missing from durable server")
		}
		if r.FaultsInjected, ok = sc.Value("quasii_fault_injected_total", nil); !ok {
			r.Problems = append(r.Problems, "quasii_fault_injected_total missing from durable server")
		}
	}

	// Cross-checks against the client-side counters. The server counts every
	// /query request it saw, so its total must cover at least the queries the
	// client got 200s for (retries and other runs only push it higher).
	if res != nil {
		if r.QueryRequests < float64(res.Queries) {
			r.Problems = append(r.Problems, fmt.Sprintf(
				"server counted %.0f /query requests but the client completed %d",
				r.QueryRequests, res.Queries))
		}
		if n, ok := sc.Value("quasii_http_request_duration_seconds_count", queryLbl); ok {
			if n < float64(res.Queries) {
				r.Problems = append(r.Problems, fmt.Sprintf(
					"duration histogram holds %.0f observations, client completed %d queries",
					n, res.Queries))
			}
		} else {
			r.Problems = append(r.Problems, "quasii_http_request_duration_seconds_count missing")
		}
	}
	return r, nil
}

// PrintMetricsReport writes the server-side percentiles (to read next to
// the client-side ones PrintLoadgen printed), the convergence observables,
// and any cross-check problems.
func PrintMetricsReport(w io.Writer, r *MetricsReport) {
	fmt.Fprintf(w, "server /metrics: %.0f /query requests, latency p50 %v  p95 %v  p99 %v (from histogram buckets)\n",
		r.QueryRequests, r.ServerP50.Round(time.Microsecond),
		r.ServerP95.Round(time.Microsecond), r.ServerP99.Round(time.Microsecond))
	fmt.Fprintf(w, "convergence: %.0f slices refined, shared-path ratio %.3f\n",
		r.SlicesRefined, r.SharedRatio)
	if r.DurableChecked {
		fmt.Fprintf(w, "durable: degraded %.0f, %.0f WAL retries, %.0f faults injected\n",
			r.Degraded, r.WALRetries, r.FaultsInjected)
	}
	for _, p := range r.Problems {
		fmt.Fprintf(w, "metrics cross-check FAILED: %s\n", p)
	}
}
