package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
)

// ThroughputSeries is one measured concurrent run: a fixed number of client
// goroutines draining a shared query workload against one (concurrency-safe)
// index.
type ThroughputSeries struct {
	Name       string
	Build      time.Duration // index construction time
	Goroutines int           // client goroutines (readers, in mixed mode)
	Queries    int           // queries answered
	Wall       time.Duration // wall-clock time for the whole workload
	Results    int64         // total result IDs returned (for validation)
	Writes     int64         // insert→delete cycles completed (mixed mode only)
}

// QPS returns the measured queries per second.
func (t *ThroughputSeries) QPS() float64 {
	if t.Wall <= 0 {
		return 0
	}
	return float64(t.Queries) / t.Wall.Seconds()
}

// RunParallel builds an index with build() (timing it) and answers every
// query using g client goroutines that drain a shared work queue, returning
// the measured throughput. The index must be safe for concurrent use.
func RunParallel(name string, build func() QueryIndex, queries []geom.Box, g int) *ThroughputSeries {
	if g < 1 {
		g = 1
	}
	s := &ThroughputSeries{Name: name, Goroutines: g, Queries: len(queries)}
	t0 := time.Now()
	ix := build()
	s.Build = time.Since(t0)

	var next, results atomic.Int64
	var wg sync.WaitGroup
	t0 = time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []int32
			var total int64
			for {
				qi := int(next.Add(1)) - 1
				if qi >= len(queries) {
					break
				}
				buf = ix.Query(queries[qi], buf[:0])
				total += int64(len(buf))
			}
			results.Add(total)
		}()
	}
	wg.Wait()
	s.Wall = time.Since(t0)
	s.Results = results.Load()
	return s
}

// UpdatableIndex is the index interface RunParallelMixed's writer
// goroutines need on top of QueryIndex. The sharded engine satisfies it.
type UpdatableIndex interface {
	QueryIndex
	Insert(objs ...geom.Object) error
	Delete(id int32, hint geom.Box) (bool, error)
}

// mixedWriteBase is the first object ID mixed-mode writers use, far above
// any generator-produced dataset ID so write traffic never collides with
// the base data.
const mixedWriteBase int32 = 1 << 30

// RunParallelMixed builds an index with build() and drains the query
// workload with `readers` goroutines while `writers` goroutines
// continuously run insert→delete cycles against it (small objects placed at
// the centers of workload queries, so the write traffic lands where the
// read traffic looks). The run ends when the readers drain the workload;
// Writes reports the completed write cycles. It measures the mixed
// crack/read regime of a live engine, where exclusive writers and shared
// readers contend for the same shards.
func RunParallelMixed(name string, build func() UpdatableIndex, queries []geom.Box, readers, writers int) *ThroughputSeries {
	if readers < 1 {
		readers = 1
	}
	if writers < 0 {
		writers = 0
	}
	s := &ThroughputSeries{Name: name, Goroutines: readers, Queries: len(queries)}
	t0 := time.Now()
	ix := build()
	s.Build = time.Since(t0)

	var next, results, writes atomic.Int64
	stop := make(chan struct{})
	var wwg sync.WaitGroup
	for w := 0; w < writers && len(queries) > 0; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			id := mixedWriteBase + int32(w)*1_000_000
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(i*writers+w)%len(queries)]
				obj := geom.Object{Box: geom.BoxAt(q.Center(), 1), ID: id + int32(i%1_000_000)}
				if ix.Insert(obj) != nil {
					return // sub-index does not support updates
				}
				if _, err := ix.Delete(obj.ID, obj.Box); err != nil {
					return
				}
				writes.Add(1)
			}
		}(w)
	}
	var rwg sync.WaitGroup
	t0 = time.Now()
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			var buf []int32
			var total int64
			for {
				qi := int(next.Add(1)) - 1
				if qi >= len(queries) {
					break
				}
				buf = ix.Query(queries[qi], buf[:0])
				total += int64(len(buf))
			}
			results.Add(total)
		}()
	}
	rwg.Wait()
	s.Wall = time.Since(t0)
	close(stop)
	wwg.Wait()
	s.Results = results.Load()
	s.Writes = writes.Load()
	return s
}

// ValidateResults checks that all throughput series returned the same total
// result cardinality — the cross-engine sanity check for concurrent runs,
// where per-query ordering is not deterministic but the total must be.
func ValidateResults(series ...*ThroughputSeries) error {
	if len(series) < 2 {
		return nil
	}
	ref := series[0]
	for _, s := range series[1:] {
		if s.Queries != ref.Queries {
			return fmt.Errorf("%s answered %d queries, %s answered %d",
				s.Name, s.Queries, ref.Name, ref.Queries)
		}
		if s.Results != ref.Results {
			return fmt.Errorf("%s returned %d total results, %s returned %d",
				s.Name, s.Results, ref.Name, ref.Results)
		}
	}
	return nil
}

// PrintThroughput writes one line per series: goroutines, build time, wall
// time and queries/sec, plus the speedup over the first series.
func PrintThroughput(w io.Writer, series ...*ThroughputSeries) {
	fmt.Fprintf(w, "%-22s %4s %12s %12s %12s %9s\n",
		"engine", "g", "build", "wall", "queries/s", "speedup")
	var base float64
	for i, s := range series {
		qps := s.QPS()
		if i == 0 {
			base = qps
		}
		speedup := "1.00x"
		if i > 0 && base > 0 {
			speedup = fmt.Sprintf("%.2fx", qps/base)
		}
		fmt.Fprintf(w, "%-22s %4d %12s %12s %12.0f %9s\n",
			s.Name, s.Goroutines, fmtDur(s.Build), fmtDur(s.Wall), qps, speedup)
	}
}
