package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
)

// ThroughputSeries is one measured concurrent run: a fixed number of client
// goroutines draining a shared query workload against one (concurrency-safe)
// index.
type ThroughputSeries struct {
	Name       string
	Build      time.Duration // index construction time
	Goroutines int           // client goroutines
	Queries    int           // queries answered
	Wall       time.Duration // wall-clock time for the whole workload
	Results    int64         // total result IDs returned (for validation)
}

// QPS returns the measured queries per second.
func (t *ThroughputSeries) QPS() float64 {
	if t.Wall <= 0 {
		return 0
	}
	return float64(t.Queries) / t.Wall.Seconds()
}

// RunParallel builds an index with build() (timing it) and answers every
// query using g client goroutines that drain a shared work queue, returning
// the measured throughput. The index must be safe for concurrent use.
func RunParallel(name string, build func() QueryIndex, queries []geom.Box, g int) *ThroughputSeries {
	if g < 1 {
		g = 1
	}
	s := &ThroughputSeries{Name: name, Goroutines: g, Queries: len(queries)}
	t0 := time.Now()
	ix := build()
	s.Build = time.Since(t0)

	var next, results atomic.Int64
	var wg sync.WaitGroup
	t0 = time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []int32
			var total int64
			for {
				qi := int(next.Add(1)) - 1
				if qi >= len(queries) {
					break
				}
				buf = ix.Query(queries[qi], buf[:0])
				total += int64(len(buf))
			}
			results.Add(total)
		}()
	}
	wg.Wait()
	s.Wall = time.Since(t0)
	s.Results = results.Load()
	return s
}

// ValidateResults checks that all throughput series returned the same total
// result cardinality — the cross-engine sanity check for concurrent runs,
// where per-query ordering is not deterministic but the total must be.
func ValidateResults(series ...*ThroughputSeries) error {
	if len(series) < 2 {
		return nil
	}
	ref := series[0]
	for _, s := range series[1:] {
		if s.Queries != ref.Queries {
			return fmt.Errorf("%s answered %d queries, %s answered %d",
				s.Name, s.Queries, ref.Name, ref.Queries)
		}
		if s.Results != ref.Results {
			return fmt.Errorf("%s returned %d total results, %s returned %d",
				s.Name, s.Results, ref.Name, ref.Results)
		}
	}
	return nil
}

// PrintThroughput writes one line per series: goroutines, build time, wall
// time and queries/sec, plus the speedup over the first series.
func PrintThroughput(w io.Writer, series ...*ThroughputSeries) {
	fmt.Fprintf(w, "%-22s %4s %12s %12s %12s %9s\n",
		"engine", "g", "build", "wall", "queries/s", "speedup")
	var base float64
	for i, s := range series {
		qps := s.QPS()
		if i == 0 {
			base = qps
		}
		speedup := "1.00x"
		if i > 0 && base > 0 {
			speedup = fmt.Sprintf("%.2fx", qps/base)
		}
		fmt.Fprintf(w, "%-22s %4d %12s %12s %12.0f %9s\n",
			s.Name, s.Goroutines, fmtDur(s.Build), fmtDur(s.Wall), qps, speedup)
	}
}
