package bench

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// scrapeFixture serves a canned /metrics exposition and runs ScrapeMetrics
// against it with no client-side result (presence/shape checks only).
func scrapeFixture(t *testing.T, body string) *MetricsReport {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(body))
	}))
	defer ts.Close()
	rep, err := ScrapeMetrics(nil, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func hasProblem(rep *MetricsReport, substr string) bool {
	for _, p := range rep.Problems {
		if strings.Contains(p, substr) {
			return true
		}
	}
	return false
}

// durableFixture is the failure-model slice of a durable server's scrape;
// the serving/convergence series are deliberately absent (their missing-
// series problems are ignored by these tests, which assert on the durable
// checks alone).
const durableFixture = `# HELP quasii_durable_degraded Degraded read-only mode.
# TYPE quasii_durable_degraded gauge
quasii_durable_degraded %s
# HELP quasii_wal_retry_total Retried WAL appends.
# TYPE quasii_wal_retry_total counter
quasii_wal_retry_total 4
# HELP quasii_fault_injected_total Injected faults.
# TYPE quasii_fault_injected_total counter
quasii_fault_injected_total 7
`

func TestScrapeMetricsDurableSeries(t *testing.T) {
	rep := scrapeFixture(t, strings.Replace(durableFixture, "%s", "1", 1))
	if !rep.DurableChecked {
		t.Fatal("durable series present but DurableChecked is false")
	}
	if rep.Degraded != 1 || rep.WALRetries != 4 || rep.FaultsInjected != 7 {
		t.Fatalf("degraded=%g retries=%g faults=%g, want 1/4/7",
			rep.Degraded, rep.WALRetries, rep.FaultsInjected)
	}
	if hasProblem(rep, "durable") || hasProblem(rep, "quasii_durable_degraded") {
		t.Fatalf("unexpected durable problems: %v", rep.Problems)
	}
}

func TestScrapeMetricsDurableDegradedDomain(t *testing.T) {
	rep := scrapeFixture(t, strings.Replace(durableFixture, "%s", "0.5", 1))
	if !hasProblem(rep, "want 0 or 1") {
		t.Fatalf("degraded=0.5 not flagged: %v", rep.Problems)
	}
}

func TestScrapeMetricsDurableSeriesMissing(t *testing.T) {
	// The sentinel gauge alone: the retry and fault counters must be
	// reported missing.
	rep := scrapeFixture(t, "quasii_durable_degraded 0\n")
	if !hasProblem(rep, "quasii_wal_retry_total missing") ||
		!hasProblem(rep, "quasii_fault_injected_total missing") {
		t.Fatalf("missing durable counters not flagged: %v", rep.Problems)
	}
}

func TestScrapeMetricsNonDurableSkipsDurableChecks(t *testing.T) {
	rep := scrapeFixture(t, "quasii_core_shared_ratio 0.5\n")
	if rep.DurableChecked {
		t.Fatal("DurableChecked true without quasii_durable_degraded")
	}
	if hasProblem(rep, "durable server") {
		t.Fatalf("durable problems on a non-durable scrape: %v", rep.Problems)
	}
}
