// Package bench is the experiment harness: it runs an index (static or
// incremental) against a query workload, recording build time and per-query
// latencies, and derives the metrics the QUASII paper reports — convergence
// series, cumulative execution time (including the build step for static
// indexes), break-even points, and data-to-insight (first-query) speedups.
package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/geom"
	"repro/internal/stats"
)

// QueryIndex is the minimal interface every measured index satisfies.
type QueryIndex interface {
	Query(q geom.Box, out []int32) []int32
}

// Series is one measured index run over a workload.
type Series struct {
	Name     string
	Build    time.Duration   // pre-processing time (0 for incremental indexes)
	PerQuery []time.Duration // latency of each query, in workload order
	Counts   []int           // result cardinality of each query (for validation)
}

// Run builds an index with build() (timing it) and executes every query
// (timing each), returning the measured series.
func Run(name string, build func() QueryIndex, queries []geom.Box) *Series {
	s := &Series{
		Name:     name,
		PerQuery: make([]time.Duration, 0, len(queries)),
		Counts:   make([]int, 0, len(queries)),
	}
	t0 := time.Now()
	ix := build()
	s.Build = time.Since(t0)
	var buf []int32
	for _, q := range queries {
		t0 = time.Now()
		buf = ix.Query(q, buf[:0])
		s.PerQuery = append(s.PerQuery, time.Since(t0))
		s.Counts = append(s.Counts, len(buf))
	}
	return s
}

// Cumulative returns the running total of execution time: Build plus all
// queries up to and including index i.
func (s *Series) Cumulative() []time.Duration {
	out := stats.Cumulative(s.PerQuery)
	for i := range out {
		out[i] += s.Build
	}
	return out
}

// Total returns build time plus all query time.
func (s *Series) Total() time.Duration { return s.Build + stats.Sum(s.PerQuery) }

// FirstQuery returns the data-to-insight time: build time plus the first
// query's latency (the paper's headline metric).
func (s *Series) FirstQuery() time.Duration {
	if len(s.PerQuery) == 0 {
		return s.Build
	}
	return s.Build + s.PerQuery[0]
}

// TailMean returns the mean latency of the last n queries — a proxy for
// converged query performance.
func (s *Series) TailMean(n int) time.Duration {
	if n > len(s.PerQuery) {
		n = len(s.PerQuery)
	}
	return stats.Mean(s.PerQuery[len(s.PerQuery)-n:])
}

// BreakEven returns the index of the first query after which the cumulative
// time of s exceeds the cumulative time of static, or -1 if it never does.
// This is the paper's break-even metric for incremental vs. static indexing.
func BreakEven(s, static *Series) int {
	a, b := s.Cumulative(), static.Cumulative()
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] > b[i] {
			return i
		}
	}
	return -1
}

// ValidateCounts checks that all series returned identical result
// cardinalities for every query — the cheap cross-index sanity check the
// harness applies to every experiment.
func ValidateCounts(series ...*Series) error {
	if len(series) < 2 {
		return nil
	}
	ref := series[0]
	for _, s := range series[1:] {
		if len(s.Counts) != len(ref.Counts) {
			return fmt.Errorf("%s answered %d queries, %s answered %d",
				s.Name, len(s.Counts), ref.Name, len(ref.Counts))
		}
		for i := range ref.Counts {
			if s.Counts[i] != ref.Counts[i] {
				return fmt.Errorf("query %d: %s returned %d results, %s returned %d",
					i, s.Name, s.Counts[i], ref.Name, ref.Counts[i])
			}
		}
	}
	return nil
}

// PrintConvergence writes a per-query latency table (one row per sampled
// query, one column per series) — the shape of the paper's Figs. 7, 9a, 10a/b.
func PrintConvergence(w io.Writer, every int, series ...*Series) {
	if len(series) == 0 {
		return
	}
	if every < 1 {
		every = 1
	}
	fmt.Fprintf(w, "%-8s", "query")
	for _, s := range series {
		fmt.Fprintf(w, " %14s", s.Name)
	}
	fmt.Fprintln(w)
	n := len(series[0].PerQuery)
	for i := 0; i < n; i += every {
		fmt.Fprintf(w, "%-8d", i)
		for _, s := range series {
			fmt.Fprintf(w, " %14s", fmtDur(s.PerQuery[i]))
		}
		fmt.Fprintln(w)
	}
}

// PrintCumulative writes a cumulative-time table including build cost — the
// shape of the paper's Figs. 8, 9b, 10c/d.
func PrintCumulative(w io.Writer, every int, series ...*Series) {
	if len(series) == 0 {
		return
	}
	if every < 1 {
		every = 1
	}
	fmt.Fprintf(w, "%-8s", "query")
	for _, s := range series {
		fmt.Fprintf(w, " %14s", s.Name)
	}
	fmt.Fprintln(w)
	cums := make([][]time.Duration, len(series))
	for i, s := range series {
		cums[i] = s.Cumulative()
	}
	n := len(series[0].PerQuery)
	for i := 0; i < n; i += every {
		fmt.Fprintf(w, "%-8d", i)
		for _, c := range cums {
			fmt.Fprintf(w, " %14s", fmtDur(c[i]))
		}
		fmt.Fprintln(w)
	}
}

// PrintSummary writes one line per series: build, first-query, total and
// converged-tail metrics.
func PrintSummary(w io.Writer, tail int, series ...*Series) {
	fmt.Fprintf(w, "%-14s %12s %14s %12s %14s\n", "index", "build", "first-query", "total", fmt.Sprintf("tail-%d mean", tail))
	for _, s := range series {
		fmt.Fprintf(w, "%-14s %12s %14s %12s %14s\n",
			s.Name, fmtDur(s.Build), fmtDur(s.FirstQuery()), fmtDur(s.Total()), fmtDur(s.TailMean(tail)))
	}
}

// fmtDur renders durations compactly with millisecond-ish precision.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
}
