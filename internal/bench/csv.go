package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteConvergenceCSV writes one row per query with the per-query latency of
// every series in nanoseconds — the raw data behind the paper's convergence
// plots, ready for any plotting tool.
func WriteConvergenceCSV(w io.Writer, series ...*Series) error {
	return writeCSV(w, false, series...)
}

// WriteCumulativeCSV writes one row per query with the cumulative execution
// time (build included) of every series in nanoseconds.
func WriteCumulativeCSV(w io.Writer, series ...*Series) error {
	return writeCSV(w, true, series...)
}

func writeCSV(w io.Writer, cumulative bool, series ...*Series) error {
	if len(series) == 0 {
		return nil
	}
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(series)+1)
	header = append(header, "query")
	for _, s := range series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	cols := make([][]int64, len(series))
	n := len(series[0].PerQuery)
	for i, s := range series {
		if len(s.PerQuery) != n {
			return fmt.Errorf("series %q has %d queries, %q has %d",
				s.Name, len(s.PerQuery), series[0].Name, n)
		}
		cols[i] = make([]int64, n)
		if cumulative {
			for j, d := range s.Cumulative() {
				cols[i][j] = d.Nanoseconds()
			}
		} else {
			for j, d := range s.PerQuery {
				cols[i][j] = d.Nanoseconds()
			}
		}
	}
	row := make([]string, len(series)+1)
	for j := 0; j < n; j++ {
		row[0] = strconv.Itoa(j)
		for i := range cols {
			row[i+1] = strconv.FormatInt(cols[i][j], 10)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
