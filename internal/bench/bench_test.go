package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/scan"
	"repro/internal/workload"
)

func TestRunRecordsSeries(t *testing.T) {
	data := dataset.Uniform(2000, 131)
	queries := workload.Uniform(dataset.Universe(), 10, 1e-2, 132)
	s := Run("scan", func() QueryIndex { return scan.New(data) }, queries)
	if s.Name != "scan" {
		t.Errorf("Name = %q", s.Name)
	}
	if len(s.PerQuery) != 10 || len(s.Counts) != 10 {
		t.Fatalf("recorded %d queries, %d counts", len(s.PerQuery), len(s.Counts))
	}
	var any bool
	for _, c := range s.Counts {
		if c > 0 {
			any = true
		}
	}
	if !any {
		t.Error("no query returned results; workload broken")
	}
}

func mkSeries(name string, build time.Duration, per ...time.Duration) *Series {
	return &Series{Name: name, Build: build, PerQuery: per, Counts: make([]int, len(per))}
}

func TestCumulativeIncludesBuild(t *testing.T) {
	s := mkSeries("x", 100, 1, 2, 3)
	cum := s.Cumulative()
	want := []time.Duration{101, 103, 106}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("Cumulative = %v, want %v", cum, want)
		}
	}
	if s.Total() != 106 {
		t.Errorf("Total = %d", s.Total())
	}
	if s.FirstQuery() != 101 {
		t.Errorf("FirstQuery = %d", s.FirstQuery())
	}
}

func TestTailMean(t *testing.T) {
	s := mkSeries("x", 0, 10, 20, 30, 40)
	if got := s.TailMean(2); got != 35 {
		t.Errorf("TailMean(2) = %d, want 35", got)
	}
	if got := s.TailMean(100); got != 25 {
		t.Errorf("TailMean(100) = %d, want 25", got)
	}
}

func TestBreakEven(t *testing.T) {
	incr := mkSeries("incr", 0, 10, 10, 10, 10)  // cum: 10 20 30 40
	static := mkSeries("static", 25, 1, 1, 1, 1) // cum: 26 27 28 29
	if got := BreakEven(incr, static); got != 2 {
		t.Errorf("BreakEven = %d, want 2 (30 > 28)", got)
	}
	never := mkSeries("never", 0, 1, 1, 1, 1)
	if got := BreakEven(never, static); got != -1 {
		t.Errorf("BreakEven = %d, want -1", got)
	}
}

func TestValidateCounts(t *testing.T) {
	a := &Series{Name: "a", Counts: []int{1, 2, 3}}
	b := &Series{Name: "b", Counts: []int{1, 2, 3}}
	if err := ValidateCounts(a, b); err != nil {
		t.Fatalf("identical counts rejected: %v", err)
	}
	c := &Series{Name: "c", Counts: []int{1, 9, 3}}
	if err := ValidateCounts(a, c); err == nil {
		t.Fatal("mismatched counts accepted")
	}
	d := &Series{Name: "d", Counts: []int{1, 2}}
	if err := ValidateCounts(a, d); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := ValidateCounts(a); err != nil {
		t.Fatal("single series should validate")
	}
}

func TestPrintersProduceTables(t *testing.T) {
	a := mkSeries("alpha", 5, 10, 20, 30)
	b := mkSeries("beta", 0, 15, 25, 35)
	var buf bytes.Buffer
	PrintConvergence(&buf, 1, a, b)
	out := buf.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Fatalf("convergence table missing headers:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 4 { // header + 3 rows
		t.Fatalf("convergence rows = %d, want 4:\n%s", got, out)
	}
	buf.Reset()
	PrintCumulative(&buf, 2, a, b)
	if got := strings.Count(buf.String(), "\n"); got != 3 { // header + rows 0,2
		t.Fatalf("cumulative rows = %d, want 3:\n%s", got, buf.String())
	}
	buf.Reset()
	PrintSummary(&buf, 2, a, b)
	if !strings.Contains(buf.String(), "first-query") {
		t.Fatalf("summary missing columns:\n%s", buf.String())
	}
}

func TestQueryBoxTypeCompatible(t *testing.T) {
	// Compile-time check that scan satisfies QueryIndex.
	var _ QueryIndex = scan.New(nil)
	_ = geom.Box{}
}
