package bench

import (
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/scan"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/workload"
)

// startServer mounts the serving subsystem over a fresh sharded index.
func startServer(tb testing.TB, n int, cfg server.Config) (*httptest.Server, []geom.Object) {
	tb.Helper()
	data := dataset.Uniform(n, 111)
	ix := shard.New(data, shard.Config{Shards: 4})
	ts := httptest.NewServer(server.New(ix, cfg).Handler())
	tb.Cleanup(ts.Close)
	return ts, data
}

// TestLoadgenSustainedMixedLoad is the acceptance run: 10k queries from 8
// concurrent clients with interleaved insert/delete cycles, every response
// checked against the scan oracle, zero mismatches allowed. Run with -race.
func TestLoadgenSustainedMixedLoad(t *testing.T) {
	ts, data := startServer(t, 20000, server.Config{
		BatchWindow: 200 * time.Microsecond,
		FlushEvery:  256,
	})
	oracle := scan.New(data)
	res := RunLoadgen(LoadgenConfig{
		BaseURL:    ts.URL,
		Clients:    8,
		Queries:    workload.Uniform(dataset.Universe(), 10000, 1e-4, 17),
		Oracle:     func(q geom.Box) []int32 { return oracle.Query(q, nil) },
		WriteEvery: 50,
	})
	PrintLoadgen(io.Discard, res) // exercise the printer
	if res.Queries != 10000 {
		t.Errorf("completed %d/10000 queries", res.Queries)
	}
	if res.Mismatches != 0 {
		t.Errorf("%d oracle mismatches", res.Mismatches)
	}
	if res.Errors != 0 {
		t.Errorf("%d errors", res.Errors)
	}
	if res.Writes == 0 {
		t.Error("no write cycles completed")
	}
}

// TestLoadgenAbsorbsBackpressure: a deliberately starved server (2 admitted
// requests, long window) must reject bursts with 429, and the retrying
// clients must still complete the whole workload correctly.
func TestLoadgenAbsorbsBackpressure(t *testing.T) {
	ts, data := startServer(t, 2000, server.Config{
		BatchWindow: 5 * time.Millisecond,
		MaxInFlight: 2,
	})
	oracle := scan.New(data)
	res := RunLoadgen(LoadgenConfig{
		BaseURL:    ts.URL,
		Clients:    16,
		Queries:    workload.Uniform(dataset.Universe(), 200, 1e-3, 19),
		Oracle:     func(q geom.Box) []int32 { return oracle.Query(q, nil) },
		MaxRetries: 10000,
	})
	if res.Queries != 200 {
		t.Errorf("completed %d/200 queries (errors %d)", res.Queries, res.Errors)
	}
	if res.Rejected == 0 {
		t.Error("no 429 was seen despite MaxInFlight=2 and 16 clients")
	}
	if res.Mismatches != 0 {
		t.Errorf("%d oracle mismatches", res.Mismatches)
	}
}

// BenchmarkServeLoadgen measures end-to-end HTTP throughput of the serving
// subsystem: 8 loadgen clients draining b.N queries.
func BenchmarkServeLoadgen(b *testing.B) {
	ts, _ := startServer(b, 50000, server.Config{BatchWindow: 200 * time.Microsecond})
	queries := workload.Uniform(dataset.Universe(), b.N, 1e-4, 23)
	b.ResetTimer()
	res := RunLoadgen(LoadgenConfig{BaseURL: ts.URL, Clients: 8, Queries: queries})
	b.StopTimer()
	if res.Errors != 0 {
		b.Fatalf("%d errors", res.Errors)
	}
	b.ReportMetric(res.QPS(), "queries/s")
}
