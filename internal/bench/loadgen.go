// HTTP load generation against the serving subsystem (internal/server).
// The driver is shared by cmd/quasii-loadgen and the benchmarks: a pool of
// client goroutines drains a query workload over HTTP, optionally mixes in
// insert/delete cycles, validates every response against a local oracle,
// and retries 429 backpressure rejections — and 503 degraded-mode
// rejections, honoring Retry-After — with exponential backoff: the
// well-behaved-client half of the admission-control and failure stories.

package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/server"
	"repro/internal/stats"
)

// LoadgenWriteBase is the first object ID the load generator uses for its
// own inserts. Response IDs at or above it are loadgen-written objects
// (possibly another client's in-flight ones) and are excluded from the
// oracle comparison; serve datasets must stay below it.
const LoadgenWriteBase int32 = 1 << 30

// LoadgenConfig parameterizes one load-generation run.
type LoadgenConfig struct {
	// BaseURL of the target server, e.g. "http://localhost:8080".
	BaseURL string
	// Clients is the number of concurrent client goroutines (min 1).
	Clients int
	// Queries is the shared range-query workload the clients drain.
	Queries []geom.Box
	// Oracle, when non-nil, returns the expected IDs for a query over the
	// server's base dataset. Responses are compared after filtering out
	// loadgen-written IDs (≥ LoadgenWriteBase); a difference counts as a
	// mismatch.
	Oracle func(q geom.Box) []int32
	// WriteEvery mixes one insert→verify→delete→verify cycle into every
	// Nth query a client executes. 0 keeps the run read-only.
	WriteEvery int
	// Writers adds that many dedicated writer goroutines running
	// insert→verify→delete cycles for the whole run, concurrently with the
	// reader clients — the readers/writers mixed-workload mode that
	// exercises the engine's shared-read/exclusive-write scheduling end to
	// end over HTTP. Writers stop when the readers drain the workload.
	// 0 disables.
	Writers int
	// AuditVisibility promotes the write cycles' read-your-writes checks
	// from anonymous mismatches to a first-class audit: every acked insert
	// must be observed by the same client's immediate re-read, and every
	// acked delete must stay invisible to it. AuditedWrites counts the
	// checks, VisibilityViolations the failures — the consistency-contract
	// assertion the restart smoke legs gate on.
	AuditVisibility bool
	// MaxRetries bounds the retries per request (429, 503 and — with
	// RetryTransport — transport errors share the budget). 0 selects 100.
	MaxRetries int
	// RetryTransport also retries transport errors (connection refused,
	// reset) with the same backoff. Off by default — against a stable
	// server a refused connection is a real failure — and switched on by
	// the chaos mode, where the server is deliberately killed mid-run and
	// every client must ride out the restart window.
	RetryTransport bool
	// WaitReady, when positive, polls the server's /healthz for up to that
	// long before the run starts, so a driver script can launch (or
	// restart) quasii-serve and the load generator back to back — the
	// kill-restart validation flow needs this, since a restarting durable
	// server replays its WAL before it listens. The run proceeds (and
	// fails fast) if the deadline passes without a 200.
	WaitReady time.Duration
	// ReadPool, when non-nil, fans range queries across a live set of base
	// URLs (leader plus read replicas) instead of BaseURL. The pool is
	// consulted again on every retry attempt, so when a replica dies — or
	// the failover harness shrinks the pool mid-run — the retried request
	// lands on a survivor. Writes always go to BaseURL: replicas are
	// read-only until promoted.
	ReadPool *URLPool
	// Client overrides the HTTP client (nil selects a pooled default).
	Client *http.Client
}

// URLPool is a mutable, concurrency-safe set of server base URLs the read
// side of a load-generation run fans over. Set replaces the whole set
// atomically; in-flight requests pick up the new membership on their next
// attempt.
type URLPool struct {
	urls atomic.Value // []string, never empty once constructed
	ctr  atomic.Uint64
}

// NewURLPool builds a pool over the given base URLs (at least one).
func NewURLPool(urls ...string) *URLPool {
	p := &URLPool{}
	p.Set(urls...)
	return p
}

// Set atomically replaces the pool membership (no-op on an empty set: a
// pool must always have somewhere to send reads).
func (p *URLPool) Set(urls ...string) {
	if len(urls) == 0 {
		return
	}
	p.urls.Store(append([]string(nil), urls...))
}

// Pick returns the next base URL round-robin.
func (p *URLPool) Pick() string {
	urls := p.urls.Load().([]string)
	return urls[p.ctr.Add(1)%uint64(len(urls))]
}

// LoadgenResult aggregates one run.
type LoadgenResult struct {
	Clients      int
	Writers      int             // dedicated writer goroutines (mixed mode)
	Queries      int             // range queries answered 200
	Writes       int             // insert→delete cycles completed by readers (WriteEvery)
	WriterCycles int             // insert→delete cycles completed by dedicated writers
	Rejected     int64           // 429 responses absorbed by retry
	Unavailable  int64           // 503 responses absorbed by retry (degraded store, restarts)
	Transport    int64           // transport errors absorbed by retry (RetryTransport)
	Errors       int64           // non-retryable failures (transport, 5xx, retries exhausted)
	Mismatches   int64           // oracle disagreements

	// The acked-write visibility audit (AuditVisibility): read-your-writes
	// checks performed and the ones that failed — an acked insert a
	// same-client read could not see, or an acked delete that stayed
	// visible. Always 0 violations on a correct server.
	AuditedWrites        int64
	VisibilityViolations int64
	Wall         time.Duration   // wall clock for the whole run
	Latencies    []time.Duration // per successful range query, all clients
}

// QPS returns successful range queries per second of wall time.
func (r *LoadgenResult) QPS() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Queries) / r.Wall.Seconds()
}

// loadgenClient wraps the per-request mechanics: JSON round-trip plus
// bounded-backoff retry on 429, 503 and (in chaos mode) transport errors.
type loadgenClient struct {
	cfg         *LoadgenConfig
	client      *http.Client
	rejected    *atomic.Int64
	unavailable *atomic.Int64
	transport   *atomic.Int64
	errors      *atomic.Int64
	audited     *atomic.Int64
	violations  *atomic.Int64
}

// retryAfter reads the response's Retry-After header as whole seconds,
// capped at one second so a degraded server's hint cannot stall a client
// goroutine for longer than a restart typically takes. 0 when absent or
// unparsable (the HTTP-date form is not worth supporting here).
func retryAfter(resp *http.Response) time.Duration {
	s, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || s <= 0 {
		return 0
	}
	if s > 1 {
		s = 1
	}
	return time.Duration(s) * time.Second
}

// post sends body and decodes the 200 answer into out, retrying 429
// (backpressure) and 503 (degraded store, mid-restart) with exponential
// backoff (1ms doubling, capped at 50ms); a 503's Retry-After hint
// overrides the backoff when longer. It reports success.
func (lc *loadgenClient) post(path string, body, out interface{}) bool {
	buf, err := json.Marshal(body)
	if err != nil {
		lc.errors.Add(1)
		return false
	}
	backoff := time.Millisecond
	maxRetries := lc.cfg.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 100
	}
	for attempt := 0; ; attempt++ {
		base := lc.cfg.BaseURL
		if lc.cfg.ReadPool != nil && path == "/query" {
			// Re-picked every attempt: a retry after a replica died routes
			// to whichever servers the pool holds now.
			base = lc.cfg.ReadPool.Pick()
		}
		resp, err := lc.client.Post(base+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			// Chaos mode: the server may be down for a restart window, so a
			// refused connection is expected traffic weather, not a failure.
			if lc.cfg.RetryTransport && attempt < maxRetries {
				lc.transport.Add(1)
				time.Sleep(backoff)
				if backoff < 50*time.Millisecond {
					backoff *= 2
				}
				continue
			}
			lc.errors.Add(1)
			return false
		}
		if resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable {
			wait := backoff
			if resp.StatusCode == http.StatusTooManyRequests {
				lc.rejected.Add(1)
			} else {
				lc.unavailable.Add(1)
				if ra := retryAfter(resp); ra > wait {
					wait = ra
				}
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if attempt >= maxRetries {
				lc.errors.Add(1)
				return false
			}
			time.Sleep(wait)
			if backoff < 50*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		ok := resp.StatusCode == http.StatusOK
		if ok && out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				ok = false
			}
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		resp.Body.Close()
		if !ok {
			lc.errors.Add(1)
		}
		return ok
	}
}

// RunLoadgen drives the workload and returns the aggregated result. The
// run itself never fails — transport errors, rejections and mismatches are
// counted, not returned — so callers can assert on the counters.
func RunLoadgen(cfg LoadgenConfig) *LoadgenResult {
	clients := cfg.Clients
	if clients < 1 {
		clients = 1
	}
	httpClient := cfg.Client
	if httpClient == nil {
		httpClient = &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: clients,
			},
		}
	}
	if cfg.WaitReady > 0 {
		waitHealthy(httpClient, cfg.BaseURL, cfg.WaitReady)
	}
	res := &LoadgenResult{Clients: clients, Writers: cfg.Writers}
	var queriesOK, writesOK, writerCycles, rejected, unavailable, transport, errors, mismatches atomic.Int64
	var audited, violations atomic.Int64
	newClient := func() *loadgenClient {
		return &loadgenClient{cfg: &cfg, client: httpClient, rejected: &rejected,
			unavailable: &unavailable, transport: &transport, errors: &errors,
			audited: &audited, violations: &violations}
	}
	perClient := make([][]time.Duration, clients)
	// Per-run nonce for write IDs: a run that dies between insert and
	// delete leaves its object on a long-lived server, and a later run
	// reusing the same ID would fail its delete-verification through no
	// fault of the server. Within a run IDs stay unique because each query
	// index is drained exactly once.
	nonce := int32(time.Now().UnixNano() & (1<<28 - 1))

	var next atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	// Dedicated writers (mixed-workload mode): loop write cycles over the
	// query boxes until the readers drain the workload. Their IDs live in a
	// range disjoint from the readers' WriteEvery cycles (which use the
	// query index) so delete-verification never crosses goroutines.
	stop := make(chan struct{})
	var wwg sync.WaitGroup
	for w := 0; w < cfg.Writers && len(cfg.Queries) > 0; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			lc := newClient()
			base := nonce + int32(len(cfg.Queries)) + int32(w)*10_000_000
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := cfg.Queries[(i*cfg.Writers+w)%len(cfg.Queries)]
				if lc.writeCycle(q, base+int32(i%10_000_000), cfg.Oracle, &mismatches) {
					writerCycles.Add(1)
				}
			}
		}(w)
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lc := newClient()
			lats := make([]time.Duration, 0, len(cfg.Queries)/clients+1)
			for {
				qi := int(next.Add(1)) - 1
				if qi >= len(cfg.Queries) {
					break
				}
				q := cfg.Queries[qi]
				var qresp server.QueryResponse
				qt0 := time.Now()
				if !lc.post("/query", server.QueryRequest{BoxJSON: server.BoxToJSON(q)}, &qresp) {
					continue
				}
				lats = append(lats, time.Since(qt0))
				queriesOK.Add(1)
				if cfg.Oracle != nil && !oracleMatch(qresp.IDs, cfg.Oracle(q)) {
					mismatches.Add(1)
				}
				if cfg.WriteEvery > 0 && qi%cfg.WriteEvery == 0 {
					if lc.writeCycle(q, nonce+int32(qi), cfg.Oracle, &mismatches) {
						writesOK.Add(1)
					}
				}
			}
			perClient[c] = lats
		}(c)
	}
	wg.Wait()
	res.Wall = time.Since(t0)
	close(stop)
	wwg.Wait()
	for _, lats := range perClient {
		res.Latencies = append(res.Latencies, lats...)
	}
	res.Queries = int(queriesOK.Load())
	res.Writes = int(writesOK.Load())
	res.WriterCycles = int(writerCycles.Load())
	res.Rejected = rejected.Load()
	res.Unavailable = unavailable.Load()
	res.Transport = transport.Load()
	res.Errors = errors.Load()
	res.Mismatches = mismatches.Load()
	res.AuditedWrites = audited.Load()
	res.VisibilityViolations = violations.Load()
	return res
}

// writeCycle inserts a small object at the query's center, verifies
// read-your-write, deletes it, and verifies it is gone. The object's ID is
// LoadgenWriteBase plus the run nonce plus the query index (unique within
// a run, collision-resistant across runs against the same server).
func (lc *loadgenClient) writeCycle(q geom.Box, id int32, oracle func(geom.Box) []int32, mismatches *atomic.Int64) bool {
	obj := geom.Object{Box: geom.BoxAt(q.Center(), 1), ID: LoadgenWriteBase + id}
	var iresp server.InsertResponse
	if !lc.post("/insert", server.InsertRequest{
		Objects: []server.ObjectJSON{{ID: obj.ID, BoxJSON: server.BoxToJSON(obj.Box)}},
	}, &iresp) {
		return false
	}
	var qresp server.QueryResponse
	if !lc.post("/query", server.QueryRequest{BoxJSON: server.BoxToJSON(obj.Box)}, &qresp) {
		return false
	}
	if lc.cfg.AuditVisibility {
		lc.audited.Add(1)
	}
	if !containsID(qresp.IDs, obj.ID) {
		mismatches.Add(1)
		if lc.cfg.AuditVisibility {
			lc.violations.Add(1)
		}
	}
	if oracle != nil && !oracleMatch(qresp.IDs, oracle(obj.Box)) {
		mismatches.Add(1)
	}
	var dresp server.DeleteResponse
	if !lc.post("/delete", server.DeleteRequest{ID: obj.ID, Hint: server.BoxToJSON(obj.Box)}, &dresp) {
		return false
	}
	if !dresp.Deleted {
		mismatches.Add(1)
		return false
	}
	if !lc.post("/query", server.QueryRequest{BoxJSON: server.BoxToJSON(obj.Box)}, &qresp) {
		return false
	}
	if lc.cfg.AuditVisibility {
		lc.audited.Add(1)
	}
	if containsID(qresp.IDs, obj.ID) {
		mismatches.Add(1)
		if lc.cfg.AuditVisibility {
			lc.violations.Add(1)
		}
	}
	return true
}

// waitHealthy polls GET /healthz until it answers 200 or the deadline
// passes, reporting which. Transport errors (server not yet listening) are
// expected and retried; they are what the wait exists to absorb.
func waitHealthy(client *http.Client, baseURL string, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(baseURL + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return true
			}
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// oracleMatch compares a response against the oracle's expected base IDs,
// ignoring loadgen-written IDs (other clients' in-flight objects).
func oracleMatch(got, want []int32) bool {
	base := make([]int32, 0, len(got))
	for _, id := range got {
		if id < LoadgenWriteBase {
			base = append(base, id)
		}
	}
	sort.Slice(base, func(i, j int) bool { return base[i] < base[j] })
	wantSorted := append([]int32(nil), want...)
	sort.Slice(wantSorted, func(i, j int) bool { return wantSorted[i] < wantSorted[j] })
	if len(base) != len(wantSorted) {
		return false
	}
	for i := range base {
		if base[i] != wantSorted[i] {
			return false
		}
	}
	return true
}

func containsID(ids []int32, id int32) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// PrintLoadgen writes the run summary: throughput, the latency
// distribution, and the backpressure/validation counters.
func PrintLoadgen(w io.Writer, r *LoadgenResult) {
	fmt.Fprintf(w, "%d clients, %d queries ok, %d write cycles in %v -> %.0f queries/s\n",
		r.Clients, r.Queries, r.Writes, r.Wall.Round(time.Millisecond), r.QPS())
	if r.Writers > 0 {
		fmt.Fprintf(w, "writers: %d goroutines completed %d insert→verify→delete cycles (%.0f cycles/s)\n",
			r.Writers, r.WriterCycles, float64(r.WriterCycles)/r.Wall.Seconds())
	}
	fmt.Fprintf(w, "latency: mean %v  p50 %v  p95 %v  p99 %v  max %v\n",
		stats.Mean(r.Latencies), stats.Percentile(r.Latencies, 50),
		stats.Percentile(r.Latencies, 95), stats.Percentile(r.Latencies, 99),
		stats.Max(r.Latencies))
	fmt.Fprintf(w, "backpressure: %d rejections (429) and %d unavailable (503) absorbed; %d errors, %d oracle mismatches\n",
		r.Rejected, r.Unavailable, r.Errors, r.Mismatches)
	if r.Transport > 0 {
		fmt.Fprintf(w, "chaos: %d transport errors absorbed across restart windows\n", r.Transport)
	}
	if r.AuditedWrites > 0 || r.VisibilityViolations > 0 {
		fmt.Fprintf(w, "visibility audit: %d acked writes re-read, %d violations\n",
			r.AuditedWrites, r.VisibilityViolations)
	}
}
