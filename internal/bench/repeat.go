package bench

import (
	"sort"
	"time"

	"repro/internal/geom"
)

// RunRepeated measures reps independent runs of the same build+workload and
// returns the median series: for every query (and for the build step) the
// median latency across runs. Medians suppress the scheduler and allocator
// noise that single runs of micro-scale experiments pick up, at reps× cost.
//
// The result's Counts come from the first run; all runs are validated to
// agree with it (an inconsistent index would invalidate the measurement).
func RunRepeated(name string, reps int, build func() QueryIndex, queries []geom.Box) (*Series, error) {
	if reps < 1 {
		reps = 1
	}
	runs := make([]*Series, reps)
	for r := 0; r < reps; r++ {
		runs[r] = Run(name, build, queries)
	}
	if err := ValidateCounts(runs...); err != nil {
		return nil, err
	}
	if reps == 1 {
		return runs[0], nil
	}
	out := &Series{
		Name:     name,
		PerQuery: make([]time.Duration, len(queries)),
		Counts:   runs[0].Counts,
	}
	builds := make([]time.Duration, reps)
	for r := range runs {
		builds[r] = runs[r].Build
	}
	out.Build = median(builds)
	col := make([]time.Duration, reps)
	for qi := range queries {
		for r := range runs {
			col[r] = runs[r].PerQuery[qi]
		}
		out.PerQuery[qi] = median(col)
	}
	return out, nil
}

// median returns the median of ds (mean of the middle two for even lengths).
// It sorts a copy.
func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}
