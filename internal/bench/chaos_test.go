package bench

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/workload"
)

// TestLoadgenAbsorbs503RetryAfter: a handler shedding its first requests
// with 503 + Retry-After must be absorbed by the retry loop — mirroring the
// 429 path — and the run must still complete without errors.
func TestLoadgenAbsorbs503RetryAfter(t *testing.T) {
	var hits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 3 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"degraded"}`, http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(server.QueryResponse{})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	res := RunLoadgen(LoadgenConfig{
		BaseURL: ts.URL,
		Clients: 1,
		Queries: workload.Uniform(dataset.Universe(), 10, 1e-3, 29),
	})
	if res.Errors != 0 {
		t.Fatalf("%d errors; 503s must be retried, not failed", res.Errors)
	}
	if res.Queries != 10 {
		t.Fatalf("completed %d/10 queries", res.Queries)
	}
	if res.Unavailable != 3 {
		t.Fatalf("Unavailable = %d, want 3", res.Unavailable)
	}
	if res.Rejected != 0 {
		t.Fatalf("Rejected = %d; 503s must not count as 429s", res.Rejected)
	}
}

// TestLoadgen503RetriesExhaust: a permanently degraded endpoint must fail
// the request after the retry budget, not spin forever.
func TestLoadgen503RetriesExhaust(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		http.Error(w, `{"error":"degraded"}`, http.StatusServiceUnavailable)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	res := RunLoadgen(LoadgenConfig{
		BaseURL:    ts.URL,
		Clients:    1,
		Queries:    workload.Uniform(dataset.Universe(), 2, 1e-3, 31),
		MaxRetries: 3,
	})
	if res.Errors != 2 {
		t.Fatalf("Errors = %d, want 2 (one per query after exhausting retries)", res.Errors)
	}
	if res.Queries != 0 {
		t.Fatalf("completed %d queries against an always-503 server", res.Queries)
	}
}

// flakyTransport fails the first n round trips with a transport error, then
// delegates — the shape of a connection refused during a restart window.
type flakyTransport struct {
	fails atomic.Int64
	base  http.RoundTripper
}

func (ft *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if ft.fails.Add(-1) >= 0 {
		return nil, fmt.Errorf("injected: connection refused")
	}
	return ft.base.RoundTrip(r)
}

// TestLoadgenRetryTransport: with RetryTransport (chaos mode) transport
// errors are absorbed with backoff; without it they fail the request.
func TestLoadgenRetryTransport(t *testing.T) {
	ts, _ := startServer(t, 1000, server.Config{BatchWindow: -1})
	queries := workload.Uniform(dataset.Universe(), 5, 1e-3, 37)

	ft := &flakyTransport{base: http.DefaultTransport}
	ft.fails.Store(4)
	res := RunLoadgen(LoadgenConfig{
		BaseURL:        ts.URL,
		Clients:        1,
		Queries:        queries,
		RetryTransport: true,
		Client:         &http.Client{Transport: ft},
	})
	if res.Errors != 0 {
		t.Fatalf("%d errors with RetryTransport", res.Errors)
	}
	if res.Queries != 5 {
		t.Fatalf("completed %d/5 queries", res.Queries)
	}
	if res.Transport != 4 {
		t.Fatalf("Transport = %d, want 4", res.Transport)
	}

	ft.fails.Store(1)
	res = RunLoadgen(LoadgenConfig{
		BaseURL: ts.URL,
		Clients: 1,
		Queries: queries[:1],
		Client:  &http.Client{Transport: ft},
	})
	if res.Errors != 1 || res.Transport != 0 {
		t.Fatalf("without RetryTransport: errors=%d transport=%d, want 1/0",
			res.Errors, res.Transport)
	}
}

// TestRunChaosKillsAndRestarts drives the harness against a trivial victim
// process (sleep) and a stub health endpoint: every budgeted kill must be
// delivered and every restart must be counted as recovered.
func TestRunChaosKillsAndRestarts(t *testing.T) {
	if _, err := exec.LookPath("sleep"); err != nil {
		t.Skip("no sleep binary on PATH")
	}
	health := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer health.Close()

	res, err := RunChaos(ChaosConfig{
		Command:   []string{"sleep", "60"},
		BaseURL:   health.URL,
		Kills:     2,
		Interval:  10 * time.Millisecond,
		WaitReady: 2 * time.Second,
	}, func() { time.Sleep(500 * time.Millisecond) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Kills != 2 || res.Restarts != 2 {
		t.Fatalf("kills=%d restarts=%d, want 2/2", res.Kills, res.Restarts)
	}
	var sb strings.Builder
	PrintChaos(&sb, res)
	if !strings.Contains(sb.String(), "2 kills") {
		t.Fatalf("PrintChaos output: %q", sb.String())
	}
}

// TestRunChaosHaltsEarly: when the load finishes before the kill budget is
// spent, the loop must stop — and never leave the server mid-restart.
func TestRunChaosHaltsEarly(t *testing.T) {
	if _, err := exec.LookPath("sleep"); err != nil {
		t.Skip("no sleep binary on PATH")
	}
	health := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer health.Close()

	res, err := RunChaos(ChaosConfig{
		Command:   []string{"sleep", "60"},
		BaseURL:   health.URL,
		Kills:     1000,
		Interval:  time.Hour,
		WaitReady: 2 * time.Second,
	}, func() {})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kills != 0 {
		t.Fatalf("kills=%d, want 0 (halted before the first interval)", res.Kills)
	}
}

// TestRunChaosBadCommand: an unstartable server is an error, not a hang.
func TestRunChaosBadCommand(t *testing.T) {
	if _, err := RunChaos(ChaosConfig{
		Command: []string{"/nonexistent-quasii-serve"},
		BaseURL: "http://127.0.0.1:0",
	}, func() {}); err == nil {
		t.Fatal("RunChaos started a nonexistent binary")
	}
	if _, err := RunChaos(ChaosConfig{BaseURL: "http://127.0.0.1:0"}, func() {}); err == nil {
		t.Fatal("RunChaos accepted an empty command")
	}
}
