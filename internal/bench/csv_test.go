package bench

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteConvergenceCSV(t *testing.T) {
	a := mkSeries("alpha", 5, 10, 20, 30)
	b := mkSeries("beta", 0, 15, 25, 35)
	var buf bytes.Buffer
	if err := WriteConvergenceCSV(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 {
		t.Fatalf("rows = %d, want 4 (header + 3)", len(records))
	}
	if records[0][0] != "query" || records[0][1] != "alpha" || records[0][2] != "beta" {
		t.Fatalf("header = %v", records[0])
	}
	if records[1][1] != "10" || records[1][2] != "15" {
		t.Fatalf("row 1 = %v", records[1])
	}
	if records[3][1] != "30" || records[3][2] != "35" {
		t.Fatalf("row 3 = %v", records[3])
	}
}

func TestWriteCumulativeCSVIncludesBuild(t *testing.T) {
	a := mkSeries("alpha", 100, 1, 2, 3)
	var buf bytes.Buffer
	if err := WriteCumulativeCSV(&buf, a); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"101", "103", "106"}
	for i, w := range want {
		if records[i+1][1] != w {
			t.Fatalf("row %d = %v, want %s", i+1, records[i+1], w)
		}
	}
}

func TestWriteCSVLengthMismatch(t *testing.T) {
	a := mkSeries("a", 0, 1, 2)
	b := mkSeries("b", 0, 1)
	var buf bytes.Buffer
	if err := WriteConvergenceCSV(&buf, a, b); err == nil ||
		!strings.Contains(err.Error(), "queries") {
		t.Fatalf("expected length-mismatch error, got %v", err)
	}
}

func TestWriteCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteConvergenceCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("expected no output, got %q", buf.String())
	}
}
