// Chaos harness: repeatedly hard-kill (SIGKILL) and restart a server
// process while a load-generation run is in flight. Each kill simulates a
// machine-level crash — no graceful shutdown, no final snapshot — so the
// restart exercises the full durable-recovery path (snapshot restore + WAL
// replay) under live traffic, and the loadgen clients, running with
// RetryTransport, must ride out every restart window without errors or
// oracle mismatches. This is the process-level complement to the in-process
// crash-point sweep in internal/durable.

package bench

import (
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"syscall"
	"time"
)

// ChaosConfig parameterizes one chaos run.
type ChaosConfig struct {
	// Command is the server command line, argv-style (no shell expansion);
	// the same command is re-executed for every restart, so it must point
	// at a durable data dir for state to survive.
	Command []string
	// BaseURL is polled on /healthz after each (re)start.
	BaseURL string
	// Kills is the number of kill→restart cycles (min 1).
	Kills int
	// Interval is the dwell time between a healthy restart and the next
	// kill — the window in which the freshly recovered server serves load.
	// 0 selects 2s.
	Interval time.Duration
	// WaitReady bounds each post-start health poll. 0 selects 30s. A
	// restart that never turns healthy aborts the kill loop and fails the
	// run.
	WaitReady time.Duration
	// ServerOut receives the server's stdout+stderr (nil discards).
	ServerOut io.Writer
	// Client overrides the health-poll HTTP client.
	Client *http.Client
}

// ChaosResult aggregates one chaos run.
type ChaosResult struct {
	Kills    int           // SIGKILLs delivered
	Restarts int           // restarts that reached healthy again
	Downtime time.Duration // summed kill→healthy windows
}

// chaosHarness owns the victim process between restarts. Only the kill
// loop goroutine touches cmd after start, so no locking is needed until
// stop — which runs strictly after the loop has exited.
type chaosHarness struct {
	cfg    ChaosConfig
	client *http.Client
	cmd    *exec.Cmd
	res    ChaosResult
	err    error
}

// RunChaos starts the server, waits for it to become healthy, runs the
// kill→restart loop concurrently with during (typically a RunLoadgen
// call), and tears the server down afterwards. The loop stops early when
// during returns first; an in-progress cycle always completes its restart,
// so during never observes a permanently dead server. The returned error
// covers process-management failures (spawn failed, restart never turned
// healthy); load-side failures stay in during's own result.
func RunChaos(cfg ChaosConfig, during func()) (*ChaosResult, error) {
	if len(cfg.Command) == 0 {
		return nil, fmt.Errorf("chaos: empty server command")
	}
	if cfg.Kills < 1 {
		cfg.Kills = 1
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.WaitReady <= 0 {
		cfg.WaitReady = 30 * time.Second
	}
	c := &chaosHarness{cfg: cfg, client: cfg.Client}
	if c.client == nil {
		c.client = &http.Client{Timeout: 5 * time.Second}
	}
	if err := c.start(); err != nil {
		return nil, fmt.Errorf("chaos: starting server: %w", err)
	}
	defer c.stop()
	if !waitHealthy(c.client, cfg.BaseURL, cfg.WaitReady) {
		return nil, fmt.Errorf("chaos: server never became healthy at %s", cfg.BaseURL)
	}

	halt := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.loop(halt)
	}()
	during()
	close(halt)
	<-done
	return &c.res, c.err
}

// start spawns a fresh server process over the configured command.
func (c *chaosHarness) start() error {
	cmd := exec.Command(c.cfg.Command[0], c.cfg.Command[1:]...)
	out := c.cfg.ServerOut
	if out == nil {
		out = io.Discard
	}
	cmd.Stdout, cmd.Stderr = out, out
	if err := cmd.Start(); err != nil {
		return err
	}
	c.cmd = cmd
	return nil
}

// loop delivers the kill→restart cycles until the budget is spent or halt
// closes. Each cycle: dwell, SIGKILL, reap, restart, poll healthy.
func (c *chaosHarness) loop(halt <-chan struct{}) {
	timer := time.NewTimer(c.cfg.Interval)
	defer timer.Stop()
	for i := 0; i < c.cfg.Kills; i++ {
		timer.Reset(c.cfg.Interval)
		select {
		case <-halt:
			return
		case <-timer.C:
		}
		t0 := time.Now()
		c.cmd.Process.Kill()
		c.cmd.Wait() // SIGKILL makes this error by design
		c.res.Kills++
		if err := c.start(); err != nil {
			c.err = fmt.Errorf("chaos: restart %d: %w", i+1, err)
			return
		}
		if !waitHealthy(c.client, c.cfg.BaseURL, c.cfg.WaitReady) {
			c.err = fmt.Errorf("chaos: restart %d never became healthy (WAL recovery stuck?)", i+1)
			return
		}
		c.res.Restarts++
		c.res.Downtime += time.Since(t0)
	}
}

// stop terminates the surviving server: SIGTERM for a graceful exit (a
// durable server writes its final snapshot), escalating to SIGKILL after
// 10s.
func (c *chaosHarness) stop() {
	if c.cmd == nil || c.cmd.Process == nil {
		return
	}
	c.cmd.Process.Signal(syscall.SIGTERM)
	waited := make(chan struct{})
	go func() {
		c.cmd.Wait()
		close(waited)
	}()
	select {
	case <-waited:
	case <-time.After(10 * time.Second):
		c.cmd.Process.Kill()
		<-waited
	}
}

// PrintChaos writes the chaos-side run summary.
func PrintChaos(w io.Writer, r *ChaosResult) {
	fmt.Fprintf(w, "chaos: %d kills, %d recovered restarts, %v total downtime\n",
		r.Kills, r.Restarts, r.Downtime.Round(time.Millisecond))
}
