package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// Chart renders measured series as a log-scale ASCII line chart, one glyph
// per series — a terminal rendition of the paper's figures. Rows are time
// buckets (log scale, largest on top); columns are queries, downsampled to
// the given width.
func Chart(w io.Writer, width, height int, cumulative bool, series ...*Series) {
	if len(series) == 0 || width < 8 || height < 4 {
		return
	}
	n := len(series[0].PerQuery)
	if n == 0 {
		return
	}
	if width > n {
		width = n
	}

	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}
	values := make([][]float64, len(series))
	minV, maxV := math.Inf(1), math.Inf(-1)
	for si, s := range series {
		var ds []time.Duration
		if cumulative {
			ds = s.Cumulative()
		} else {
			ds = s.PerQuery
		}
		if len(ds) != n {
			return // mismatched series; charts need a shared x axis
		}
		values[si] = make([]float64, width)
		for col := 0; col < width; col++ {
			// Downsample by averaging each column's bucket.
			lo := col * n / width
			hi := (col + 1) * n / width
			if hi <= lo {
				hi = lo + 1
			}
			var sum float64
			for _, d := range ds[lo:hi] {
				sum += float64(d.Nanoseconds())
			}
			v := sum / float64(hi-lo)
			if v <= 0 {
				v = 1
			}
			values[si][col] = v
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	if minV <= 0 || math.IsInf(minV, 1) {
		minV = 1
	}
	if maxV <= minV {
		maxV = minV * 10
	}
	logMin, logMax := math.Log10(minV), math.Log10(maxV)

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si := range values {
		g := glyphs[si%len(glyphs)]
		for col, v := range values[si] {
			frac := (math.Log10(v) - logMin) / (logMax - logMin)
			row := height - 1 - int(frac*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = g
		}
	}

	// Y-axis labels on three rows: top, middle, bottom.
	label := func(frac float64) string {
		v := math.Pow(10, logMin+frac*(logMax-logMin))
		return fmtDur(time.Duration(v))
	}
	for r, row := range grid {
		var lab string
		switch r {
		case 0:
			lab = label(1)
		case height / 2:
			lab = label(0.5)
		case height - 1:
			lab = label(0)
		}
		fmt.Fprintf(w, "%10s |%s|\n", lab, row)
	}
	fmt.Fprintf(w, "%10s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(w, "%10s  query 0 .. %d\n", "", n-1)
	legend := make([]string, len(series))
	for si, s := range series {
		legend[si] = fmt.Sprintf("%c=%s", glyphs[si%len(glyphs)], s.Name)
	}
	fmt.Fprintf(w, "%10s  %s\n", "", strings.Join(legend, "  "))
}
