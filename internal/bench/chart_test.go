package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestChartRendersAllSeries(t *testing.T) {
	a := mkSeries("fast", 0, 10, 10, 10, 10, 10, 10, 10, 10)
	b := mkSeries("slow", 0, 1000, 900, 800, 700, 600, 500, 400, 300)
	var buf bytes.Buffer
	Chart(&buf, 8, 6, false, a, b)
	out := buf.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("chart missing glyphs:\n%s", out)
	}
	if !strings.Contains(out, "fast") || !strings.Contains(out, "slow") {
		t.Fatalf("chart missing legend:\n%s", out)
	}
	// The slow series must appear above the fast one: the first grid row
	// containing 'o' precedes the first containing '*'.
	lines := strings.Split(out, "\n")
	firstO, firstStar := -1, -1
	for i, line := range lines {
		if firstO < 0 && strings.Contains(line, "o") && strings.Contains(line, "|") {
			firstO = i
		}
		if firstStar < 0 && strings.Contains(line, "*") && strings.Contains(line, "|") {
			firstStar = i
		}
	}
	if firstO < 0 || firstStar < 0 || firstO >= firstStar {
		t.Fatalf("series not vertically ordered (o at %d, * at %d):\n%s", firstO, firstStar, out)
	}
}

func TestChartCumulativeMonotone(t *testing.T) {
	a := mkSeries("x", 100, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5)
	var buf bytes.Buffer
	Chart(&buf, 10, 5, true, a)
	if buf.Len() == 0 {
		t.Fatal("no chart output")
	}
}

func TestChartDegenerateInputs(t *testing.T) {
	var buf bytes.Buffer
	Chart(&buf, 100, 10, false) // no series
	empty := &Series{Name: "e"}
	Chart(&buf, 100, 10, false, empty) // no queries
	tiny := mkSeries("t", 0, 1)
	Chart(&buf, 4, 2, false, tiny) // width/height too small
	if buf.Len() != 0 {
		t.Fatalf("degenerate inputs should render nothing, got:\n%s", buf.String())
	}
}

func TestChartMismatchedSeriesSkipped(t *testing.T) {
	a := mkSeries("a", 0, 1, 2, 3)
	b := mkSeries("b", 0, 1, 2)
	var buf bytes.Buffer
	Chart(&buf, 8, 4, false, a, b)
	if buf.Len() != 0 {
		t.Fatal("mismatched series should render nothing")
	}
}

func TestChartDownsamples(t *testing.T) {
	per := make([]time.Duration, 1000)
	for i := range per {
		per[i] = time.Duration(i + 1)
	}
	s := &Series{Name: "big", PerQuery: per, Counts: make([]int, 1000)}
	var buf bytes.Buffer
	Chart(&buf, 40, 8, false, s)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	for _, line := range lines {
		if len(line) > 60 {
			t.Fatalf("line too wide (%d): %q", len(line), line)
		}
	}
}
