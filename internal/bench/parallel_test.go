package bench

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/scan"
	"repro/internal/shard"
	"repro/internal/workload"
)

func TestRunParallelMatchesSerial(t *testing.T) {
	data := dataset.Uniform(3000, 31)
	queries := workload.Uniform(dataset.Universe(), 100, 1e-3, 32)

	serial := Run("scan", func() QueryIndex { return scan.New(data) }, queries)
	var wantTotal int64
	for _, c := range serial.Counts {
		wantTotal += int64(c)
	}

	par := RunParallel("sharded", func() QueryIndex {
		return shard.New(data, shard.Config{Shards: 4})
	}, queries, 4)
	if par.Queries != len(queries) {
		t.Fatalf("answered %d queries, want %d", par.Queries, len(queries))
	}
	if par.Results != wantTotal {
		t.Fatalf("total results %d, want %d", par.Results, wantTotal)
	}
	if par.Wall <= 0 || par.QPS() <= 0 {
		t.Fatalf("no wall time measured: %+v", par)
	}
}

// TestRunParallelMixed drives readers and writers through the sharded
// engine at once: the workload must drain completely and the writers must
// make progress. (Result totals are not compared against a read-only run:
// a reader may legitimately observe another writer's in-flight insert.)
func TestRunParallelMixed(t *testing.T) {
	data := dataset.Uniform(3000, 33)
	queries := workload.Uniform(dataset.Universe(), 400, 1e-3, 34)

	mixed := RunParallelMixed("sharded-mixed", func() UpdatableIndex {
		return shard.New(data, shard.Config{Shards: 2})
	}, queries, 3, 2)
	if mixed.Queries != len(queries) {
		t.Fatalf("answered %d queries, want %d", mixed.Queries, len(queries))
	}
	if mixed.Writes == 0 {
		t.Fatal("writer goroutines completed no insert→delete cycles")
	}
	if mixed.Wall <= 0 || mixed.QPS() <= 0 {
		t.Fatalf("no wall time measured: %+v", mixed)
	}
}

// TestRunReadScaling smoke-runs the read-scaling harness on tiny inputs and
// checks cross-engine validation plus the table printer.
func TestRunReadScaling(t *testing.T) {
	data := dataset.Uniform(2000, 35)
	queries := workload.Uniform(dataset.Universe(), 60, 1e-3, 36)
	build := func(disableShared bool) func(bool) QueryIndex {
		return func(converged bool) QueryIndex {
			ix := shard.New(data, shard.Config{Shards: 1, DisableSharedReads: disableShared})
			if converged {
				ix.Complete()
			}
			return ix
		}
	}
	points, err := RunReadScaling(ReadScalingConfig{
		Engines: []ReadScaleEngine{
			{Name: "exclusive", Build: build(true)},
			{Name: "shared", Build: build(false)},
		},
		Queries:    queries,
		Goroutines: []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 2; len(points) != want { // phases x goroutines x engines
		t.Fatalf("got %d points, want %d", len(points), want)
	}
	var sb strings.Builder
	PrintReadScaling(&sb, points)
	for _, want := range []string{"phase converged", "phase mixed", "shared", "exclusive"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q:\n%s", want, sb.String())
		}
	}
}

func TestValidateResults(t *testing.T) {
	a := &ThroughputSeries{Name: "a", Queries: 10, Results: 100}
	b := &ThroughputSeries{Name: "b", Queries: 10, Results: 100}
	if err := ValidateResults(a, b); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	b.Results = 99
	if err := ValidateResults(a, b); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestPrintThroughput(t *testing.T) {
	var sb strings.Builder
	PrintThroughput(&sb,
		&ThroughputSeries{Name: "mutex", Goroutines: 8, Queries: 100, Wall: 2e9},
		&ThroughputSeries{Name: "sharded", Goroutines: 8, Queries: 100, Wall: 1e9},
	)
	out := sb.String()
	for _, want := range []string{"mutex", "sharded", "2.00x", "queries/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
