package bench

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/scan"
	"repro/internal/shard"
	"repro/internal/workload"
)

func TestRunParallelMatchesSerial(t *testing.T) {
	data := dataset.Uniform(3000, 31)
	queries := workload.Uniform(dataset.Universe(), 100, 1e-3, 32)

	serial := Run("scan", func() QueryIndex { return scan.New(data) }, queries)
	var wantTotal int64
	for _, c := range serial.Counts {
		wantTotal += int64(c)
	}

	par := RunParallel("sharded", func() QueryIndex {
		return shard.New(data, shard.Config{Shards: 4})
	}, queries, 4)
	if par.Queries != len(queries) {
		t.Fatalf("answered %d queries, want %d", par.Queries, len(queries))
	}
	if par.Results != wantTotal {
		t.Fatalf("total results %d, want %d", par.Results, wantTotal)
	}
	if par.Wall <= 0 || par.QPS() <= 0 {
		t.Fatalf("no wall time measured: %+v", par)
	}
}

func TestValidateResults(t *testing.T) {
	a := &ThroughputSeries{Name: "a", Queries: 10, Results: 100}
	b := &ThroughputSeries{Name: "b", Queries: 10, Results: 100}
	if err := ValidateResults(a, b); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	b.Results = 99
	if err := ValidateResults(a, b); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestPrintThroughput(t *testing.T) {
	var sb strings.Builder
	PrintThroughput(&sb,
		&ThroughputSeries{Name: "mutex", Goroutines: 8, Queries: 100, Wall: 2e9},
		&ThroughputSeries{Name: "sharded", Goroutines: 8, Queries: 100, Wall: 1e9},
	)
	out := sb.String()
	for _, want := range []string{"mutex", "sharded", "2.00x", "queries/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
