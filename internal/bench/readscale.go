// Read-scaling throughput harness: how does query throughput scale with
// client goroutines on ONE shard? This is the measurement behind the
// concurrent read-path engine — the sharded engine's inter-shard
// parallelism is a separate axis (see RunParallel / the throughput
// experiment); here every query lands on the same shard, so any scaling
// comes from the shard's internal concurrency: the RWMutex shared read path
// on converged slices versus the exclusive-lock baseline.
//
// Two phases are measured, mirroring QUASII's lifecycle:
//
//   - converged: the index is fully refined before measurement (the
//     builder's responsibility); every query rides the shared read path,
//     the regime the paper's R-tree comparison lives in.
//   - mixed:     a cold index answers the same workload while it cracks,
//     measuring how reads behave when exclusive refinement interleaves.

package bench

import (
	"fmt"
	"io"

	"repro/internal/geom"
)

// ReadScalePoint is one measured (phase, engine, goroutines) cell.
type ReadScalePoint struct {
	Phase      string  `json:"phase"`      // "converged" or "mixed"
	Engine     string  `json:"engine"`     // e.g. "shared" or "exclusive"
	Goroutines int     `json:"goroutines"` // client goroutines
	QPS        float64 `json:"qps"`
	Results    int64   `json:"results"` // total result IDs (cross-engine validation)
}

// ReadScalingConfig parameterizes RunReadScaling.
type ReadScalingConfig struct {
	// Engines maps an engine name to its builder. Each builder is invoked
	// fresh per (phase, goroutines) cell. For the converged phase the
	// builder receives converged == true and must return an index that is
	// already fully refined (e.g. by pre-draining the workload or calling
	// the sub-indexes' Complete); for the mixed phase it must return a cold
	// index that still cracks.
	Engines []ReadScaleEngine
	// Queries is the shared workload every cell drains.
	Queries []geom.Box
	// Goroutines is the client-count sweep, e.g. [1, 2, 4, 8].
	Goroutines []int
	// SkipMixed drops the cold-index phase (useful when only the converged
	// scaling matters).
	SkipMixed bool
}

// ReadScaleEngine names one engine variant under measurement.
type ReadScaleEngine struct {
	Name  string
	Build func(converged bool) QueryIndex
}

// RunReadScaling measures every (phase, engine, goroutines) cell and
// returns the points in measurement order. Within one (phase, goroutines)
// pair, all engines must agree on the total result cardinality; a
// disagreement is returned as an error (a concurrency bug, not noise).
func RunReadScaling(cfg ReadScalingConfig) ([]ReadScalePoint, error) {
	phases := []struct {
		name      string
		converged bool
	}{{"converged", true}}
	if !cfg.SkipMixed {
		phases = append(phases, struct {
			name      string
			converged bool
		}{"mixed", false})
	}
	var points []ReadScalePoint
	for _, ph := range phases {
		for _, g := range cfg.Goroutines {
			var ref *ThroughputSeries
			for _, e := range cfg.Engines {
				e := e
				conv := ph.converged
				s := RunParallel(e.Name, func() QueryIndex { return e.Build(conv) }, cfg.Queries, g)
				if ref == nil {
					ref = s
				} else if err := ValidateResults(ref, s); err != nil {
					return nil, fmt.Errorf("read scaling %s/g=%d: %w", ph.name, g, err)
				}
				points = append(points, ReadScalePoint{
					Phase:      ph.name,
					Engine:     e.Name,
					Goroutines: g,
					QPS:        s.QPS(),
					Results:    s.Results,
				})
			}
		}
	}
	return points, nil
}

// PrintReadScaling writes one table per phase: a row per (engine,
// goroutines) cell with the speedup of each cell over that engine's first
// measured cell (self-scale) and over the first engine's cell at the same
// goroutine count (vs-base — typically shared over exclusive, the
// cross-engine headline).
func PrintReadScaling(w io.Writer, points []ReadScalePoint) {
	byPhase := map[string][]ReadScalePoint{}
	var order []string
	for _, p := range points {
		if _, seen := byPhase[p.Phase]; !seen {
			order = append(order, p.Phase)
		}
		byPhase[p.Phase] = append(byPhase[p.Phase], p)
	}
	for _, phase := range order {
		fmt.Fprintf(w, "  phase %s:\n", phase)
		fmt.Fprintf(w, "  %-12s %4s %12s %10s %9s\n", "engine", "g", "queries/s", "self-scale", "vs-base")
		selfBase := map[string]float64{} // engine -> its first cell's QPS
		gBase := map[int]float64{}       // goroutines -> first engine's QPS there
		for _, p := range byPhase[phase] {
			if _, ok := selfBase[p.Engine]; !ok {
				selfBase[p.Engine] = p.QPS
			}
			if _, ok := gBase[p.Goroutines]; !ok {
				gBase[p.Goroutines] = p.QPS
			}
			scale, vsBase := 1.0, 1.0
			if b := selfBase[p.Engine]; b > 0 {
				scale = p.QPS / b
			}
			if b := gBase[p.Goroutines]; b > 0 {
				vsBase = p.QPS / b
			}
			fmt.Fprintf(w, "  %-12s %4d %12.0f %9.2fx %8.2fx\n",
				p.Engine, p.Goroutines, p.QPS, scale, vsBase)
		}
		fmt.Fprintln(w)
	}
}
