package bench

import (
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/scan"
	"repro/internal/workload"
)

func ds(vals ...int) []time.Duration {
	out := make([]time.Duration, len(vals))
	for i, v := range vals {
		out[i] = time.Duration(v)
	}
	return out
}

func TestMedian(t *testing.T) {
	tests := []struct {
		in   []time.Duration
		want time.Duration
	}{
		{nil, 0},
		{ds(5), 5},
		{ds(1, 9), 5},
		{ds(9, 1, 5), 5},
		{ds(4, 1, 3, 2), 2}, // (2+3)/2
	}
	for _, tt := range tests {
		if got := median(tt.in); got != tt.want {
			t.Errorf("median(%v) = %d, want %d", tt.in, got, tt.want)
		}
	}
	// Input must not be mutated.
	in := ds(3, 1, 2)
	median(in)
	if in[0] != 3 {
		t.Error("median mutated its input")
	}
}

func TestRunRepeatedShape(t *testing.T) {
	data := dataset.Uniform(1000, 801)
	queries := workload.Uniform(dataset.Universe(), 10, 1e-2, 802)
	s, err := RunRepeated("scan", 3, func() QueryIndex { return scan.New(data) }, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.PerQuery) != 10 || len(s.Counts) != 10 {
		t.Fatalf("series shape wrong: %d queries, %d counts", len(s.PerQuery), len(s.Counts))
	}
	if s.Name != "scan" {
		t.Errorf("Name = %q", s.Name)
	}
}

func TestRunRepeatedSingleRep(t *testing.T) {
	data := dataset.Uniform(500, 803)
	queries := workload.Uniform(dataset.Universe(), 5, 1e-2, 804)
	s, err := RunRepeated("scan", 0, func() QueryIndex { return scan.New(data) }, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.PerQuery) != 5 {
		t.Fatalf("got %d queries", len(s.PerQuery))
	}
}

// flakyIndex drops one result per query when drop is set, to exercise the
// cross-run validation of RunRepeated.
type flakyIndex struct {
	drop bool
	s    *scan.Index
}

func (f *flakyIndex) Query(q geom.Box, out []int32) []int32 {
	out = f.s.Query(q, out)
	if f.drop && len(out) > 0 {
		out = out[:len(out)-1]
	}
	return out
}

func TestRunRepeatedDetectsInconsistentRuns(t *testing.T) {
	data := dataset.Uniform(500, 805)
	queries := workload.Uniform(dataset.Universe(), 5, 1e-1, 806)
	builds := 0
	_, err := RunRepeated("flaky", 2, func() QueryIndex {
		builds++
		return &flakyIndex{drop: builds > 1, s: scan.New(data)}
	}, queries)
	if err == nil {
		t.Fatal("inconsistent runs accepted")
	}
}
