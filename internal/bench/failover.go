// Failover harness: run a leader/follower pair as real processes, push
// acknowledged writes at the leader under concurrent read load fanned over
// both servers, SIGKILL the leader once the follower has applied every
// acknowledged record (verified against the leader's own sequence counter,
// not the follower's possibly-stale lag gauge), promote the follower, and
// prove that every acknowledged write survived — the process-level,
// zero-loss validation of the replication subsystem. The kill is lag-gated
// on purpose: replication is asynchronous, so the honest guarantee is
// "acknowledged writes the follower had caught up to are never lost", and
// the harness measures exactly that boundary.

package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/geom"
	"repro/internal/repl"
	"repro/internal/server"
)

// FailoverConfig parameterizes one failover run.
type FailoverConfig struct {
	// LeaderCommand / FollowerCommand are the two server command lines,
	// argv-style. The follower command must point -replicate-from at
	// LeaderURL and use its own -data-dir.
	LeaderCommand   []string
	FollowerCommand []string
	// LeaderURL / FollowerURL are the two base URLs.
	LeaderURL   string
	FollowerURL string
	// Queries is the read workload fanned across both servers for the whole
	// run (oracle-validated when Oracle is set).
	Queries []geom.Box
	// Oracle returns the expected IDs for a query over the leader's base
	// dataset (loadgen/harness-written IDs are filtered before comparing).
	Oracle func(q geom.Box) []int32
	// Clients is the reader goroutine count (min 1).
	Clients int
	// AckWrites is how many acknowledged inserts the harness writer pushes
	// at the leader before the kill (min 1).
	AckWrites int
	// WaitReady bounds each readiness poll. 0 selects 60s.
	WaitReady time.Duration
	// ServerOut receives both servers' stdout+stderr (nil discards).
	ServerOut io.Writer
	// Client overrides the harness HTTP client.
	Client *http.Client
}

// FailoverResult aggregates one failover run.
type FailoverResult struct {
	// ReadinessGated reports that the follower's /readyz answered 503 at
	// least once before its first 200 — the catch-up gate was observed
	// doing its job, not raced past.
	ReadinessGated bool
	// FollowerRejectedWrites reports that a pre-promotion write against the
	// follower answered 503 (read replicas never silently accept writes).
	FollowerRejectedWrites bool
	// AckedWrites is how many harness inserts the dead leader acknowledged.
	AckedWrites int
	// LostWrites counts acknowledged IDs missing from the promoted
	// follower. The run's headline number: it must be zero.
	LostWrites int
	// PromoteSeq is the promotion checkpoint's snapshot sequence.
	PromoteSeq uint64
	// PostPromoteWrites counts writes the promoted follower accepted.
	PostPromoteWrites int
	// Load is the concurrent read-side result (fanned over both servers,
	// riding out the leader kill via the shrinking URL pool).
	Load *LoadgenResult
}

// failoverProc owns one server process.
type failoverProc struct {
	name string
	cmd  *exec.Cmd
}

func startProc(name string, argv []string, out io.Writer) (*failoverProc, error) {
	if len(argv) == 0 {
		return nil, fmt.Errorf("failover: empty %s command", name)
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	if out == nil {
		out = io.Discard
	}
	cmd.Stdout, cmd.Stderr = out, out
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("failover: starting %s: %w", name, err)
	}
	return &failoverProc{name: name, cmd: cmd}, nil
}

// kill SIGKILLs the process: the machine-crash simulation.
func (p *failoverProc) kill() {
	if p == nil || p.cmd == nil || p.cmd.Process == nil {
		return
	}
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

// term asks for a graceful exit, escalating to SIGKILL after 10s.
func (p *failoverProc) term() {
	if p == nil || p.cmd == nil || p.cmd.Process == nil {
		return
	}
	p.cmd.Process.Signal(syscall.SIGTERM)
	waited := make(chan struct{})
	go func() {
		p.cmd.Wait()
		close(waited)
	}()
	select {
	case <-waited:
	case <-time.After(10 * time.Second):
		p.cmd.Process.Kill()
		<-waited
	}
}

// getJSON fetches url and decodes the body into out, returning the status
// code. Transport errors return 0.
func getJSON(client *http.Client, url string, out interface{}) int {
	resp, err := client.Get(url)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if json.NewDecoder(resp.Body).Decode(out) != nil {
			return 0
		}
		return resp.StatusCode
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// RunFailover executes the full scenario. The returned error covers
// harness-level failures (a server never came up, the follower never
// caught up, promotion failed); correctness verdicts — lost writes, oracle
// mismatches, the readiness gate — live in the result for the caller to
// assert on.
func RunFailover(cfg FailoverConfig) (*FailoverResult, error) {
	if cfg.WaitReady <= 0 {
		cfg.WaitReady = 60 * time.Second
	}
	if cfg.AckWrites < 1 {
		cfg.AckWrites = 1
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	res := &FailoverResult{}

	// Start the follower first, against a leader that does not exist yet.
	// Its listener binds immediately while the bootstrap fetch retries with
	// backoff, so /readyz is guaranteed to answer 503 — the catch-up gate is
	// observed deterministically instead of racing a fast local bootstrap
	// that can finish between two polls.
	follower, err := startProc("follower", cfg.FollowerCommand, cfg.ServerOut)
	if err != nil {
		return nil, err
	}
	defer follower.term()
	deadline := time.Now().Add(cfg.WaitReady)
	for {
		if getJSON(client, cfg.FollowerURL+"/readyz", nil) == http.StatusServiceUnavailable {
			res.ReadinessGated = true
			break
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("failover: follower never answered /readyz at %s", cfg.FollowerURL)
		}
		time.Sleep(5 * time.Millisecond)
	}

	leader, err := startProc("leader", cfg.LeaderCommand, cfg.ServerOut)
	if err != nil {
		return nil, err
	}
	defer leader.kill() // no-op once the scenario has killed it
	if !waitHealthy(client, cfg.LeaderURL, cfg.WaitReady) {
		return nil, fmt.Errorf("failover: leader never became healthy at %s", cfg.LeaderURL)
	}

	// Watch the follower's /readyz converge: bootstrapping, then catching up
	// past -max-lag, then 200.
	deadline = time.Now().Add(cfg.WaitReady)
	for {
		code := getJSON(client, cfg.FollowerURL+"/readyz", nil)
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("failover: follower never became ready at %s", cfg.FollowerURL)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Concurrent read load over both servers for the rest of the scenario.
	// RetryTransport + the per-attempt pool re-pick is what carries reads
	// across the leader kill.
	pool := NewURLPool(cfg.LeaderURL, cfg.FollowerURL)
	loadDone := make(chan *LoadgenResult, 1)
	go func() {
		loadDone <- RunLoadgen(LoadgenConfig{
			BaseURL:        cfg.LeaderURL,
			Clients:        cfg.Clients,
			Queries:        cfg.Queries,
			Oracle:         cfg.Oracle,
			ReadPool:       pool,
			RetryTransport: true,
			Client:         client,
		})
	}()

	// The harness writer: acknowledged inserts against the leader. Each
	// object sits at a workload query's center with an ID above
	// LoadgenWriteBase, so the concurrent oracle comparison ignores it.
	var discard, errs atomic.Int64
	lc := &loadgenClient{
		cfg:    &LoadgenConfig{BaseURL: cfg.LeaderURL, MaxRetries: 200},
		client: client, rejected: &discard, unavailable: &discard,
		transport: &discard, errors: &errs,
	}
	nonce := int32(time.Now().UnixNano() & (1<<27 - 1))
	acked := make([]geom.Object, 0, cfg.AckWrites)
	for i := 0; i < cfg.AckWrites; i++ {
		q := cfg.Queries[i%len(cfg.Queries)]
		obj := geom.Object{
			Box: geom.BoxAt(q.Center(), 1),
			// Disjoint from both loadgen write-cycle ranges (they start at
			// LoadgenWriteBase + a sub-2^28 nonce and stay below +2^29).
			ID: LoadgenWriteBase + 1<<29 + nonce + int32(i),
		}
		var iresp server.InsertResponse
		if !lc.post("/insert", server.InsertRequest{
			Objects: []server.ObjectJSON{{ID: obj.ID, BoxJSON: server.BoxToJSON(obj.Box)}},
		}, &iresp) {
			return res, fmt.Errorf("failover: leader refused harness insert %d", i)
		}
		acked = append(acked, obj)
	}
	res.AckedWrites = len(acked)

	// A write against the still-read-only follower must be rejected, not
	// silently applied (it would fork the replica from the leader).
	probe := server.InsertRequest{Objects: []server.ObjectJSON{{
		ID: LoadgenWriteBase + 1<<29 + nonce + int32(cfg.AckWrites),
		BoxJSON: server.BoxToJSON(geom.BoxAt(cfg.Queries[0].Center(), 1)),
	}}}
	if code := postStatus(client, cfg.FollowerURL+"/insert", probe); code == http.StatusServiceUnavailable {
		res.FollowerRejectedWrites = true
	}

	// Gate the kill on the follower having applied every acknowledged
	// record, measured against the leader's own sequence counter. The
	// follower's lag gauge compares against the leader next-seq it learned
	// from its last poll response, which can be one write stale: an acked
	// record landing just after that response is invisible to the gauge, and
	// killing inside that window sheds the record legitimately (replication
	// is asynchronous) but fails the zero-loss audit this harness exists to
	// make. The harness writer has stopped, so the leader's counter is
	// stable and the comparison is race-free.
	deadline = time.Now().Add(cfg.WaitReady)
	for {
		var st server.StatsResponse
		code := getJSON(client, cfg.FollowerURL+"/stats", &st)
		if code == http.StatusOK && st.Repl != nil &&
			st.Repl.Bootstrapped && st.Repl.LagRecords == 0 {
			next, ok := leaderNextSeq(client, cfg.LeaderURL, st.Repl.AppliedSeq+1)
			if ok && st.Repl.AppliedSeq+1 >= next {
				break
			}
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("failover: follower never reached zero lag")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Machine crash: SIGKILL the leader mid-run, shrink the read pool so
	// retried reads drain to the follower, then promote it.
	leader.kill()
	pool.Set(cfg.FollowerURL)
	var presp server.PromoteResponse
	preq, err := http.NewRequest(http.MethodPost, cfg.FollowerURL+repl.PathPromote, nil)
	if err != nil {
		return res, err
	}
	presp2, err := client.Do(preq)
	if err != nil {
		return res, fmt.Errorf("failover: promote request: %w", err)
	}
	defer presp2.Body.Close()
	if presp2.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(presp2.Body, 512))
		return res, fmt.Errorf("failover: promote answered %s: %s", presp2.Status, body)
	}
	if err := json.NewDecoder(presp2.Body).Decode(&presp); err != nil {
		return res, fmt.Errorf("failover: decoding promote response: %w", err)
	}
	res.PromoteSeq = presp.Seq

	// Zero-loss audit: every acknowledged object must answer on the
	// promoted follower.
	flc := &loadgenClient{
		cfg:    &LoadgenConfig{BaseURL: cfg.FollowerURL, MaxRetries: 200},
		client: client, rejected: &discard, unavailable: &discard,
		transport: &discard, errors: &errs,
	}
	for _, obj := range acked {
		var qresp server.QueryResponse
		if !flc.post("/query", server.QueryRequest{BoxJSON: server.BoxToJSON(obj.Box)}, &qresp) ||
			!containsID(qresp.IDs, obj.ID) {
			res.LostWrites++
		}
	}

	// The promoted follower is the new leader: writes must flow again.
	for i := 0; i < 3; i++ {
		obj := geom.Object{
			Box: geom.BoxAt(cfg.Queries[i%len(cfg.Queries)].Center(), 1),
			ID:  LoadgenWriteBase + 1<<29 + nonce + int32(cfg.AckWrites) + 1 + int32(i),
		}
		var iresp server.InsertResponse
		if flc.post("/insert", server.InsertRequest{
			Objects: []server.ObjectJSON{{ID: obj.ID, BoxJSON: server.BoxToJSON(obj.Box)}},
		}, &iresp) {
			res.PostPromoteWrites++
		}
	}

	res.Load = <-loadDone
	return res, nil
}

// leaderNextSeq reads the leader's next WAL sequence from the
// X-Quasii-Next-Seq header of a zero-wait /repl/wal probe. from must be a
// sequence the leader plausibly retains — a follower's applied+1 qualifies,
// since the follower received it from the leader's retained log moments
// ago. A 410 (just garbage-collected) reports failure and the caller
// re-polls.
func leaderNextSeq(client *http.Client, base string, from uint64) (uint64, bool) {
	resp, err := client.Get(fmt.Sprintf("%s%s?from=%d&wait=0", base, repl.PathWAL, from))
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		io.Copy(io.Discard, resp.Body)
		return 0, false
	}
	next, err := strconv.ParseUint(resp.Header.Get(repl.HdrNextSeq), 10, 64)
	return next, err == nil
}

// postStatus POSTs body as JSON and returns the raw status code (0 on
// transport or encoding failure), for probes that assert on rejections.
func postStatus(client *http.Client, url string, body interface{}) int {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// PrintFailover writes the failover run summary in the greppable shape
// scripts/replication-smoke.sh asserts on.
func PrintFailover(w io.Writer, r *FailoverResult) {
	fmt.Fprintf(w, "failover: follower readiness gated during catch-up: %v\n", r.ReadinessGated)
	fmt.Fprintf(w, "failover: follower rejected pre-promotion writes: %v\n", r.FollowerRejectedWrites)
	fmt.Fprintf(w, "failover: promoted follower at snapshot seq %d\n", r.PromoteSeq)
	fmt.Fprintf(w, "failover: %d acked writes before kill, %d lost after promotion\n",
		r.AckedWrites, r.LostWrites)
	fmt.Fprintf(w, "failover: %d post-promotion writes accepted\n", r.PostPromoteWrites)
	if r.Load != nil {
		PrintLoadgen(w, r.Load)
	}
}
