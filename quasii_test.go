package quasii_test

import (
	"sort"
	"testing"

	quasii "repro"
)

func sortedIDs(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allIndexes constructs every index in the module over (clones of) data.
func allIndexes(data []quasii.Object) map[string]quasii.Index {
	return map[string]quasii.Index{
		"Scan":           quasii.NewScan(data),
		"QUASII":         quasii.NewQUASII(quasii.CloneObjects(data), quasii.QUASIIConfig{}),
		"R-Tree":         quasii.NewRTree(data, quasii.RTreeConfig{}),
		"Grid/QueryExt":  quasii.NewGrid(data, quasii.GridConfig{Partitions: 24, Universe: quasii.Universe()}),
		"Grid/Replicate": quasii.NewGrid(data, quasii.GridConfig{Partitions: 24, Assign: quasii.GridReplication, Universe: quasii.Universe()}),
		"Mosaic":         quasii.NewMosaic(data, quasii.MosaicConfig{Universe: quasii.Universe()}),
		"Octree":         quasii.NewOctree(data, quasii.OctreeConfig{Universe: quasii.Universe()}),
		"SFC":            quasii.NewSFC(data, quasii.SFCConfig{Universe: quasii.Universe()}),
		"SFCracker":      quasii.NewSFCracker(quasii.CloneObjects(data), quasii.SFCConfig{Universe: quasii.Universe()}),
		"SFC/Hilbert":    quasii.NewSFC(data, quasii.SFCConfig{Universe: quasii.Universe(), Curve: quasii.CurveHilbert}),
		"DynRTree":       quasii.NewDynRTreeFromData(data, quasii.RTreeConfig{}),
		"RStarTree":      quasii.NewRStarTreeFromData(data, quasii.RTreeConfig{}),
		"TwoLevelGrid":   quasii.NewTwoLevelGrid(data, quasii.TwoLevelGridConfig{Universe: quasii.Universe()}),
		"QUASII/stoch":   quasii.NewQUASII(quasii.CloneObjects(data), quasii.QUASIIConfig{Stochastic: true}),
		"Sharded/4":      quasii.NewSharded(data, quasii.ShardedConfig{Shards: 4}),
		"Synchronized":   quasii.Synchronize(quasii.NewQUASII(quasii.CloneObjects(data), quasii.QUASIIConfig{})),
		"SyncStatic":     quasii.SynchronizeStatic(quasii.NewRTree(data, quasii.RTreeConfig{})),
	}
}

// TestAllIndexesAgree is the module-level integration test: every index must
// return exactly the Scan result set for every query of a mixed workload, on
// both the uniform and the clustered dataset.
func TestAllIndexesAgree(t *testing.T) {
	datasets := map[string][]quasii.Object{
		"uniform": quasii.UniformDataset(6000, 201),
		"neuro":   quasii.NeuroDataset(6000, 202, quasii.NeuroConfig{}),
	}
	for dsName, data := range datasets {
		dsName, data := dsName, data
		t.Run(dsName, func(t *testing.T) {
			queries := append(
				quasii.UniformQueries(60, 1e-3, 203),
				quasii.ClusteredQueries(data, 3, 20, 1e-4, 200, 204)...)
			oracle := quasii.NewScan(data)
			indexes := allIndexes(data)
			var want, got []int32
			for qi, q := range queries {
				want = sortedIDs(oracle.Query(q, want[:0]))
				for name, ix := range indexes {
					got = sortedIDs(ix.Query(q, got[:0]))
					if !equalIDs(got, want) {
						t.Fatalf("%s query %d: got %d results, scan %d", name, qi, len(got), len(want))
					}
				}
			}
		})
	}
}

func TestPublicAPIQuickstart(t *testing.T) {
	// The README quick-start must actually work.
	objects := []quasii.Object{
		{Box: quasii.BoxAt(quasii.Point{5, 5, 5}, 2), ID: 1},
		{Box: quasii.BoxAt(quasii.Point{50, 50, 50}, 2), ID: 2},
	}
	ix := quasii.NewQUASII(objects, quasii.QUASIIConfig{})
	hits := ix.Query(quasii.NewBox(quasii.Point{0, 0, 0}, quasii.Point{10, 10, 10}), nil)
	if len(hits) != 1 || hits[0] != 1 {
		t.Fatalf("hits = %v, want [1]", hits)
	}
	if ix.Len() != 2 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestQUASIIStatsExposed(t *testing.T) {
	data := quasii.UniformDataset(2000, 205)
	ix := quasii.NewQUASII(data, quasii.QUASIIConfig{})
	for _, q := range quasii.UniformQueries(10, 1e-2, 206) {
		ix.Query(q, nil)
	}
	st := ix.Stats()
	if st.Queries != 10 || st.Cracks == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRTreeKNNExposed(t *testing.T) {
	data := quasii.UniformDataset(1000, 207)
	tr := quasii.NewRTree(data, quasii.RTreeConfig{})
	nn := tr.KNN(quasii.Point{5000, 5000, 5000}, 5)
	if len(nn) != 5 {
		t.Fatalf("KNN returned %d, want 5", len(nn))
	}
	for i := 1; i < len(nn); i++ {
		if nn[i].DistSq < nn[i-1].DistSq {
			t.Fatal("KNN not sorted by distance")
		}
	}
}

func TestMBBHelper(t *testing.T) {
	objs := []quasii.Object{
		{Box: quasii.BoxAt(quasii.Point{1, 1, 1}, 2), ID: 0},
		{Box: quasii.BoxAt(quasii.Point{9, 9, 9}, 2), ID: 1},
	}
	m := quasii.MBB(objs)
	if m.Min != (quasii.Point{0, 0, 0}) || m.Max != (quasii.Point{10, 10, 10}) {
		t.Fatalf("MBB = %v", m)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := quasii.UniformDataset(100, 42)
	b := quasii.UniformDataset(100, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("UniformDataset not deterministic for equal seeds")
		}
	}
	c := quasii.UniformDataset(100, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

// TestShardedPublicAPI exercises the sharded engine through the re-exported
// surface: construction, batch queries, aggregated stats, and a custom
// sub-index constructor.
func TestShardedPublicAPI(t *testing.T) {
	data := quasii.UniformDataset(4000, 301)
	oracle := quasii.NewScan(data)
	queries := quasii.UniformQueries(50, 1e-3, 302)

	ix := quasii.NewSharded(data, quasii.ShardedConfig{Shards: 8})
	if ix.Len() != len(data) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(data))
	}
	if ix.NumShards() < 1 || ix.NumShards() > 8 {
		t.Fatalf("NumShards = %d", ix.NumShards())
	}

	var want []int32
	for qi, ids := range ix.QueryBatch(queries) {
		want = sortedIDs(oracle.Query(queries[qi], want[:0]))
		if !equalIDs(sortedIDs(ids), want) {
			t.Fatalf("batch query %d: got %d results, scan %d", qi, len(ids), len(want))
		}
	}

	st := ix.Stats()
	if st.Objects != len(data) || st.Core.Queries == 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}

	// Custom sub-index: an R-tree per shard.
	rt := quasii.NewSharded(data, quasii.ShardedConfig{
		Shards: 4,
		New: func(objs []quasii.Object) quasii.ShardQueryable {
			return quasii.NewRTree(objs, quasii.RTreeConfig{})
		},
	})
	for qi, q := range queries {
		want = sortedIDs(oracle.Query(q, want[:0]))
		if got := sortedIDs(rt.Query(q, nil)); !equalIDs(got, want) {
			t.Fatalf("rtree-sharded query %d: got %d results, scan %d", qi, len(got), len(want))
		}
	}
}
