// Command persistence walks through the durability subsystem in-process:
//
//  1. Save/Load one QUASII index — the refinement accumulated by queries
//     survives the round trip, so the reloaded index cracks nothing.
//  2. A durable store (snapshot + write-ahead log): insert and delete with
//     immediate durability, a hard stop with no Close, and a reopen that
//     recovers every acknowledged update from the WAL tail.
//  3. A checkpoint, which truncates the WAL so the next open replays nothing.
//
// Run with: go run ./examples/persistence
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	quasii "repro"
)

func main() {
	// --- 1. Save/Load a single index -----------------------------------
	data := quasii.UniformDataset(50_000, 1)
	ix := quasii.NewQUASII(quasii.CloneObjects(data), quasii.QUASIIConfig{})
	queries := quasii.UniformQueries(400, 1e-3, 2)
	for _, q := range queries {
		ix.Query(q, nil)
	}
	before := ix.Stats()
	fmt.Printf("queried index: %d queries refined %d slices with %d crack passes\n",
		before.Queries, ix.NumSlices(), before.Cracks)

	var buf bytes.Buffer
	if err := quasii.Save(ix, &buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %d bytes (columnar v2 format)\n", buf.Len())

	loaded, err := quasii.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range queries {
		loaded.Query(q, nil) // same workload again: everything is converged
	}
	fmt.Printf("reloaded index re-ran the workload with %d new crack passes (want 0)\n",
		loaded.Stats().Cracks-before.Cracks)

	// --- 2. A durable store with WAL -----------------------------------
	dir, err := os.MkdirTemp("", "quasii-persistence-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	store, err := quasii.OpenStore(dir, quasii.StoreConfig{
		Bootstrap: func() []quasii.Object { return data },
		Fsync:     quasii.FsyncAlways, // every update durable before it is acknowledged
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstore opened in %s (snapshot seq %d, %d objects)\n",
		dir, store.Seq(), store.Index().Len())

	obj := quasii.Object{Box: quasii.BoxAt(quasii.Point{123, 456, 789}, 2), ID: 900_001}
	if err := store.Insert(obj); err != nil {
		log.Fatal(err)
	}
	if _, err := store.Delete(data[0].ID, data[0].Box); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after insert+delete the WAL holds %d bytes\n", store.WALSize())

	// Hard stop: drop the store on the floor — no Close, no checkpoint.
	// FsyncAlways means both updates are already durable.
	store = nil

	reopened, err := quasii.OpenStore(dir, quasii.StoreConfig{})
	if err != nil {
		log.Fatal(err)
	}
	hits := reopened.Index().Query(obj.Box, nil)
	fmt.Printf("reopened after hard stop: %d objects, insert visible: %v\n",
		reopened.Index().Len(), contains(hits, obj.ID))

	// --- 3. Checkpoint: snapshot + WAL truncation ----------------------
	seq, err := reopened.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint wrote snapshot seq %d; WAL is now %d bytes\n",
		seq, reopened.WALSize())
	if err := reopened.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("closed cleanly: the next open replays nothing")
}

func contains(ids []int32, id int32) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}
