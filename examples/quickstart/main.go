// Quickstart: index a handful of boxes with QUASII and run range queries.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	quasii "repro"
)

func main() {
	// A tiny scene: shelves of unit boxes along a diagonal, plus one large
	// box overlapping several of them.
	var objects []quasii.Object
	for i := 0; i < 10; i++ {
		c := float64(i*10 + 5)
		objects = append(objects, quasii.Object{
			Box: quasii.BoxAt(quasii.Point{c, c, c}, 2),
			ID:  int32(i),
		})
	}
	objects = append(objects, quasii.Object{
		Box: quasii.NewBox(quasii.Point{0, 0, 0}, quasii.Point{30, 30, 30}),
		ID:  100,
	})

	// Building QUASII is O(n): no sorting, no tree construction. The index
	// organizes itself while you query. It takes ownership of the slice.
	ix := quasii.NewQUASII(objects, quasii.QUASIIConfig{})

	// A range query returns the IDs of all intersecting objects.
	q := quasii.NewBox(quasii.Point{0, 0, 0}, quasii.Point{25, 25, 25})
	fmt.Printf("query %v -> IDs %v\n", q, ix.Query(q, nil))

	// Each query refines the index further; repeated or nearby queries get
	// faster. Stats expose the work done so far.
	q2 := quasii.NewBox(quasii.Point{40, 40, 40}, quasii.Point{80, 80, 80})
	fmt.Printf("query %v -> IDs %v\n", q2, ix.Query(q2, nil))
	st := ix.Stats()
	fmt.Printf("after %d queries: %d cracks, %d slices created\n",
		st.Queries, st.Cracks, st.SlicesCreated)
}
