// Neuroscience model validation — the paper's motivating scenario (Sec. 2).
//
// A scientist builds a spatial model (here: a clustered synthetic stand-in
// for a brain-tissue model), picks a few regions at random, and inspects
// each region with several spatially close range queries to check its
// density. After a handful of regions the model may be abandoned — so the
// hours a static index spends on pre-processing may never pay off.
//
// This example runs that exact workflow with QUASII (query immediately) and
// an R-tree (pre-process, then query) and reports the data-to-insight time
// and the cumulative cost of the whole session.
//
// Run with: go run ./examples/neuroscience
package main

import (
	"fmt"
	"time"

	quasii "repro"
)

func main() {
	const nObjects = 150000
	fmt.Printf("building a %d-element tissue model...\n", nObjects)
	model := quasii.NeuroDataset(nObjects, 7, quasii.NeuroConfig{})

	// The validation session: 4 regions, 25 close-by queries each, each
	// query covering 0.01% of the model volume.
	session := quasii.ClusteredQueries(model, 4, 25, 1e-4, 150, 8)

	// --- QUASII: no pre-processing, queries start immediately. ---
	start := time.Now()
	ix := quasii.NewQUASII(quasii.CloneObjects(model), quasii.QUASIIConfig{})
	var firstInsight time.Duration
	var buf []int32
	densities := make([]int, 0, len(session))
	for i, q := range session {
		buf = ix.Query(q, buf[:0])
		densities = append(densities, len(buf))
		if i == 0 {
			firstInsight = time.Since(start)
		}
	}
	quasiiTotal := time.Since(start)

	// --- R-tree: bulk-load first, then query. ---
	start = time.Now()
	tree := quasii.NewRTree(model, quasii.RTreeConfig{})
	buildTime := time.Since(start)
	var rtreeFirst time.Duration
	for i, q := range session {
		t0 := time.Now()
		buf = tree.Query(q, buf[:0])
		if i == 0 {
			rtreeFirst = buildTime + time.Since(t0)
		}
		if len(buf) != densities[i] {
			panic(fmt.Sprintf("index disagreement on query %d", i))
		}
	}
	rtreeTotal := buildTime + time.Since(start) - buildTime + buildTime // build + queries
	_ = rtreeTotal

	fmt.Printf("\nregion densities (objects per query):\n")
	for r := 0; r < 4; r++ {
		sum := 0
		for _, d := range densities[r*25 : r*25+25] {
			sum += d
		}
		fmt.Printf("  region %d: mean %.1f objects\n", r, float64(sum)/25)
	}

	fmt.Printf("\ndata-to-insight (time to the first region measurement):\n")
	fmt.Printf("  QUASII: %12v  (starts answering immediately)\n", firstInsight)
	fmt.Printf("  R-tree: %12v  (%v of it is index building)\n", rtreeFirst, buildTime)
	fmt.Printf("  -> QUASII reaches the first insight %.1fx sooner\n",
		float64(rtreeFirst)/float64(firstInsight))
	fmt.Printf("\nwhole session (%d queries): QUASII %v\n", len(session), quasiiTotal)
	st := ix.Stats()
	fmt.Printf("index built as a side effect: %d slices from %d cracks\n",
		ix.NumSlices(), st.Cracks)
}
