// Exploration break-even analysis: when does static indexing pay off?
//
// The central trade-off of the paper: a static index amortizes its build
// cost only if enough queries follow; an incremental index starts instantly
// but pays a little extra on early queries. This example runs the same
// uniform workload through Scan, QUASII, a uniform Grid and an R-tree and
// prints the cumulative-time crossovers, so you can see how many queries
// each static structure needs to beat the adaptive one.
//
// Run with: go run ./examples/exploration
package main

import (
	"fmt"
	"time"

	quasii "repro"
)

type run struct {
	name  string
	build time.Duration
	per   []time.Duration
}

func (r *run) cumulative(i int) time.Duration {
	total := r.build
	for _, d := range r.per[:i+1] {
		total += d
	}
	return total
}

func measure(name string, mk func() quasii.Index, queries []quasii.Box) *run {
	t0 := time.Now()
	ix := mk()
	r := &run{name: name, build: time.Since(t0)}
	var buf []int32
	for _, q := range queries {
		t0 = time.Now()
		buf = ix.Query(q, buf[:0])
		r.per = append(r.per, time.Since(t0))
	}
	return r
}

func main() {
	const n = 120000
	data := quasii.UniformDataset(n, 11)
	queries := quasii.UniformQueries(400, 1e-3, 12)
	fmt.Printf("dataset: %d objects, workload: %d uniform queries (0.1%% selectivity)\n\n", n, len(queries))

	runs := []*run{
		measure("Scan", func() quasii.Index { return quasii.NewScan(data) }, queries),
		measure("QUASII", func() quasii.Index {
			return quasii.NewQUASII(quasii.CloneObjects(data), quasii.QUASIIConfig{})
		}, queries),
		measure("Grid", func() quasii.Index {
			return quasii.NewGrid(data, quasii.GridConfig{Partitions: 48, Universe: quasii.Universe()})
		}, queries),
		measure("R-tree", func() quasii.Index { return quasii.NewRTree(data, quasii.RTreeConfig{}) }, queries),
	}

	fmt.Printf("%-8s %12s %14s %14s %14s\n", "index", "build", "first query", "100 queries", "all queries")
	for _, r := range runs {
		fmt.Printf("%-8s %12v %14v %14v %14v\n",
			r.name, r.build, r.cumulative(0), r.cumulative(99), r.cumulative(len(queries)-1))
	}

	quasiiRun := runs[1]
	fmt.Println("\ncumulative-time crossovers against QUASII:")
	for _, r := range []*run{runs[2], runs[3]} {
		cross := -1
		for i := range queries {
			if quasiiRun.cumulative(i) > r.cumulative(i) {
				cross = i
				break
			}
		}
		if cross < 0 {
			fmt.Printf("  %s never beats QUASII within %d queries — its build cost is not amortized\n",
				r.name, len(queries))
		} else {
			fmt.Printf("  %s overtakes QUASII after %d queries\n", r.name, cross)
		}
	}
	fmt.Println("\nrule of thumb: the fewer queries your exploration will issue, the stronger")
	fmt.Println("the case for incremental indexing — and you rarely know that count up front.")
}
