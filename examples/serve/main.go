// Serving demo: the sharded QUASII engine behind the HTTP/JSON service,
// driven end to end from one process — the same requests the README's curl
// examples show, including a live insert/delete round trip and the /stats
// counters that expose batching and admission control at work.
//
// Run with: go run ./examples/serve
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	quasii "repro"
)

func post(url string, body string) map[string]interface{} {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: %d %v", url, resp.StatusCode, out)
	}
	return out
}

func get(url string) map[string]interface{} {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return out
}

func main() {
	// A sharded QUASII index over the paper's uniform dataset, served over
	// HTTP with a short batching window.
	data := quasii.UniformDataset(100000, 1)
	ix := quasii.NewSharded(data, quasii.ShardedConfig{})
	srv := quasii.NewServer(ix, quasii.ServerConfig{
		BatchWindow: 500 * time.Microsecond,
		FlushEvery:  1024,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { log.Fatal(srv.Serve(l)) }()
	base := "http://" + l.Addr().String()
	fmt.Printf("serving %d objects in %d shards at %s\n\n", len(data), ix.NumShards(), base)

	// Liveness.
	fmt.Println("GET /healthz      ->", get(base+"/healthz"))

	// One range query; the GET form is what you would curl.
	q := get(base + "/query?min=0,0,0&max=500,500,500")
	fmt.Println("GET /query        ->", int(q["count"].(float64)), "objects in [0,500]^3")

	// k nearest neighbors of the universe center.
	knn := post(base+"/knn", `{"point":[5000,5000,5000],"k":3}`)
	fmt.Println("POST /knn         ->", knn["neighbors"])

	// Live update round trip: insert, see it, delete, see it gone.
	post(base+"/insert", `{"objects":[{"id":900001,"min":[1,1,1],"max":[2,2,2]}]}`)
	after := post(base+"/query", `{"min":[0,0,0],"max":[3,3,3]}`)
	fmt.Println("POST /insert      -> id 900001 visible:", contains(after, 900001))
	post(base+"/delete", `{"id":900001,"hint":{"min":[1,1,1],"max":[2,2,2]}}`)
	gone := post(base+"/query", `{"min":[0,0,0],"max":[3,3,3]}`)
	fmt.Println("POST /delete      -> id 900001 visible:", contains(gone, 900001))

	// A burst of concurrent singleton queries: the server coalesces them
	// into QueryBatch fan-outs (see the batcher counters below).
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			post(base+"/query", `{"min":[2000,2000,2000],"max":[2600,2600,2600]}`)
		}()
	}
	wg.Wait()

	// A /batch request answers many queries in one fan-out.
	batch := post(base+"/batch",
		`{"queries":[{"min":[0,0,0],"max":[900,900,900]},{"min":[5000,5000,5000],"max":[5900,5900,5900]}]}`)
	fmt.Println("POST /batch       ->", len(batch["results"].([]interface{})), "result sets")

	// The metrics endpoint: per-endpoint latency, batching, admission.
	st := get(base + "/stats")
	b := st["batcher"].(map[string]interface{})
	fmt.Printf("GET /stats        -> %v batches for %v coalesced queries (avg %.1f/batch)\n",
		b["batches"], b["batched_queries"], b["avg_batch_size"])
	fmt.Println("                     index:", st["index"])
}

func contains(resp map[string]interface{}, id float64) bool {
	for _, v := range resp["ids"].([]interface{}) {
		if v.(float64) == id {
			return true
		}
	}
	return false
}
