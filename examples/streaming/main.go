// Streaming arrivals: indexing data that keeps growing.
//
// The paper assumes a static setting — all data available before the first
// query (Sec. 2). Real deployments rarely cooperate, so the library offers
// two escape hatches, contrasted here on an insert-heavy exploration session:
//
//   - QUASII.Append buffers arrivals (scanned linearly by every query) and
//     Flush folds them into the cracked array, restarting refinement;
//   - DynRTree is a classic Guttman R-tree that absorbs inserts natively at
//     the cost of slower construction and more node overlap than STR.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"time"

	quasii "repro"
)

func main() {
	const (
		initial   = 60000
		batches   = 5
		batchSize = 8000
		perBatch  = 40 // queries between arrivals
	)
	base := quasii.UniformDataset(initial, 31)
	arrivals := quasii.UniformDataset(batches*batchSize, 32)
	for i := range arrivals {
		arrivals[i].ID += int32(initial) // keep IDs unique across the stream
	}
	queries := quasii.UniformQueries(batches*perBatch, 1e-3, 33)

	// QUASII with Append/Flush.
	ix := quasii.NewQUASII(quasii.CloneObjects(base), quasii.QUASIIConfig{})
	// Dynamic R-tree, inserting the initial load one object at a time.
	start := time.Now()
	dyn := quasii.NewDynRTree(quasii.RTreeConfig{})
	for _, o := range base {
		dyn.Insert(o)
	}
	fmt.Printf("initial load: DynRTree insert of %d objects took %v; QUASII was ready instantly\n",
		initial, time.Since(start))

	var qTime, dTime time.Duration
	var buf []int32
	for b := 0; b < batches; b++ {
		batch := arrivals[b*batchSize : (b+1)*batchSize]
		// Arrivals land mid-session.
		t0 := time.Now()
		ix.Append(batch...)
		appendTime := time.Since(t0)
		t0 = time.Now()
		for _, o := range batch {
			dyn.Insert(o)
		}
		insertTime := time.Since(t0)

		// Then the analyst keeps querying.
		var mismatch int
		t0 = time.Now()
		for _, q := range queries[b*perBatch : (b+1)*perBatch] {
			buf = ix.Query(q, buf[:0])
			mismatch += len(buf)
		}
		qTime += time.Since(t0)
		t0 = time.Now()
		for _, q := range queries[b*perBatch : (b+1)*perBatch] {
			buf = dyn.Query(q, buf[:0])
			mismatch -= len(buf)
		}
		dTime += time.Since(t0)
		if mismatch != 0 {
			panic("indexes disagree")
		}
		fmt.Printf("batch %d: append %v (QUASII, %d pending) vs insert %v (DynRTree)\n",
			b+1, appendTime, ix.Pending(), insertTime)

		// Fold the buffered arrivals when the pending scan starts to hurt.
		if ix.Pending() > 2*batchSize {
			t0 = time.Now()
			ix.Flush()
			fmt.Printf("         flushed pending objects into the cracked array in %v\n", time.Since(t0))
		}
	}
	fmt.Printf("\nquery time over the whole session: QUASII %v, DynRTree %v\n", qTime, dTime)
	fmt.Printf("final sizes: QUASII %d, DynRTree %d\n", ix.Len(), dyn.Len())
	fmt.Println("\ntake-away: buffered cracking keeps arrivals cheap and pays at query time;")
	fmt.Println("the dynamic R-tree pays at insert time and queries stay flat.")
}
