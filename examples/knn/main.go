// k-nearest-neighbor search: range queries as a building block.
//
// The paper notes (Sec. 2) that range queries are the building block for
// other spatial queries such as kNN. This example shows both routes:
//
//  1. the R-tree's native best-first kNN, and
//  2. kNN via expanding range queries on QUASII — repeatedly doubling a
//     search cube around the query point until it holds k candidates, then
//     verifying with one final tight range query. Because QUASII refines
//     itself along the way, repeated kNN probes in the same region speed up.
//
// Run with: go run ./examples/knn
package main

import (
	"fmt"
	"sort"
	"time"

	quasii "repro"
)

// knnByRange finds the k nearest objects to p using only range queries.
func knnByRange(ix quasii.Index, data []quasii.Object, byID map[int32]int, p quasii.Point, k int) []int32 {
	side := 50.0
	var hits []int32
	for {
		hits = ix.Query(quasii.BoxAt(p, side), hits[:0])
		if len(hits) >= k || side > 2*quasii.UniverseSide {
			break
		}
		side *= 2
	}
	// The farthest of the k candidates bounds the true kNN radius; one more
	// query at that radius guarantees no closer object is missed.
	type cand struct {
		id int32
		d  float64
	}
	cands := make([]cand, 0, len(hits))
	for _, id := range hits {
		cands = append(cands, cand{id, data[byID[id]].MinDistSq(p)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	if len(cands) > k {
		cands = cands[:k]
	}
	if len(cands) == k {
		r := cands[k-1].d
		side = 2.0 * sqrt(r)
		hits = ix.Query(quasii.BoxAt(p, side+1), hits[:0])
		cands = cands[:0]
		for _, id := range hits {
			cands = append(cands, cand{id, data[byID[id]].MinDistSq(p)})
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
		if len(cands) > k {
			cands = cands[:k]
		}
	}
	out := make([]int32, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func main() {
	const n = 100000
	data := quasii.UniformDataset(n, 21)
	byID := make(map[int32]int, n)
	for i := range data {
		byID[data[i].ID] = i
	}

	tree := quasii.NewRTree(data, quasii.RTreeConfig{})
	ix := quasii.NewQUASII(quasii.CloneObjects(data), quasii.QUASIIConfig{})

	probes := []quasii.Point{
		{2500, 2500, 2500},
		{2600, 2450, 2550}, // near the first probe: QUASII reuses its refinement
		{7500, 1000, 9000},
	}
	const k = 8
	for _, p := range probes {
		t0 := time.Now()
		native := tree.KNN(p, k)
		nativeTime := time.Since(t0)

		t0 = time.Now()
		builtin := ix.KNN(p, k) // QUASII's own kNN (expanding ranges inside)
		builtinTime := time.Since(t0)
		if len(builtin) != len(native) || builtin[0].DistSq != native[0].DistSq {
			panic("QUASII.KNN disagrees with the R-tree")
		}
		fmt.Printf("QUASII.KNN at %v: %v (R-tree best-first: %v)\n", p, builtinTime, nativeTime)

		t0 = time.Now()
		viaRange := knnByRange(ix, data, byID, p, k)
		rangeTime := time.Since(t0)

		match := len(native) == len(viaRange)
		if match {
			nat := map[int32]bool{}
			for _, nb := range native {
				nat[nb.ID] = true
			}
			for _, id := range viaRange {
				// Ties at equal distance may legitimately differ; compare
				// by distance instead of identity.
				if !nat[id] && data[byID[id]].MinDistSq(p) > native[len(native)-1].DistSq+1e-9 {
					match = false
				}
			}
		}
		fmt.Printf("kNN at %v: R-tree %v, QUASII-by-range %v, agree=%v\n",
			p, nativeTime, rangeTime, match)
	}
	fmt.Println("\nnearest IDs from the last probe:", func() []int32 {
		nn := tree.KNN(probes[len(probes)-1], k)
		ids := make([]int32, len(nn))
		for i, nb := range nn {
			ids[i] = nb.ID
		}
		return ids
	}())
}
