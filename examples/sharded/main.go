// Sharded serving: QUASII behind the sharded parallel engine, queried by
// many goroutines at once — the multi-core deployment mode the paper's
// single-threaded evaluation leaves open.
//
// The program builds the same uniform dataset twice: once behind a single
// global mutex (quasii.Synchronize) and once spatially partitioned into
// GOMAXPROCS shards with per-shard locks (quasii.NewSharded). A pool of
// client goroutines then drains an identical query workload from each and
// the program reports queries/sec, the speedup, and the sharded engine's
// aggregated cracking statistics.
//
// Run with: go run ./examples/sharded
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	quasii "repro"
)

const (
	numObjects  = 200000
	numQueries  = 4000
	selectivity = 1e-3
	clients     = 8
)

func serve(name string, ix quasii.Index, queries []quasii.Box) float64 {
	var next, results atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []int32
			for {
				qi := int(next.Add(1)) - 1
				if qi >= len(queries) {
					return
				}
				buf = ix.Query(queries[qi], buf[:0])
				results.Add(int64(len(buf)))
			}
		}()
	}
	wg.Wait()
	wall := time.Since(t0)
	qps := float64(len(queries)) / wall.Seconds()
	fmt.Printf("%-12s %d clients: %6d queries in %8v -> %8.0f queries/s (%d result IDs)\n",
		name, clients, len(queries), wall.Round(time.Millisecond), qps, results.Load())
	return qps
}

func main() {
	fmt.Printf("GOMAXPROCS=%d\n\n", runtime.GOMAXPROCS(0))
	data := quasii.UniformDataset(numObjects, 1)
	queries := quasii.UniformQueries(numQueries, selectivity, 2)

	// Baseline: one QUASII index, one global mutex. Every query serializes,
	// because adaptive indexes crack their data on reads too.
	mutexed := quasii.Synchronize(quasii.NewQUASII(quasii.CloneObjects(data), quasii.QUASIIConfig{}))
	base := serve("mutex", mutexed, queries)

	// Sharded: STR tiling into GOMAXPROCS spatial shards, one QUASII and
	// one lock per shard. Queries on different shards never contend.
	sharded := quasii.NewSharded(data, quasii.ShardedConfig{})
	qps := serve("sharded", sharded, queries)

	fmt.Printf("\nspeedup: %.2fx with %d shards\n", qps/base, sharded.NumShards())

	// A batch path for throughput workloads: the engine schedules the whole
	// slice of queries over its worker pool.
	t0 := time.Now()
	out := sharded.QueryBatch(queries)
	fmt.Printf("QueryBatch: %d queries in %v\n", len(out), time.Since(t0).Round(time.Millisecond))

	// Per-shard QUASII work, aggregated: the cracking effort spread across
	// the shards instead of concentrated in one structure.
	st := sharded.Stats()
	fmt.Printf("\nshards: %d (objects per shard %d..%d)\n", st.Shards, st.MinShardLen, st.MaxShardLen)
	fmt.Printf("aggregate QUASII work: %d queries, %d cracks, %d slices created\n",
		st.Core.Queries, st.Core.Cracks, st.Core.SlicesCreated)
}
