// Package quasii is a Go implementation of QUASII — the QUery-Aware Spatial
// Incremental Index of Pavlovic, Sidlauskas, Heinis and Ailamaki (EDBT 2018)
// — together with every baseline the paper evaluates it against.
//
// QUASII indexes 3-d boxes in main memory without a pre-processing step:
// the index is built incrementally, as a side effect of executing range
// queries, by partially sorting (cracking) the data array on each query's
// bounds one dimension at a time. The first query is therefore almost as
// cheap as a scan, while frequently queried regions converge to the query
// performance of a bulk-loaded R-tree.
//
// # Quick start
//
//	objects := []quasii.Object{ ... }
//	ix := quasii.NewQUASII(objects, quasii.QUASIIConfig{})
//	hits := ix.Query(quasii.NewBox(
//		quasii.Point{0, 0, 0}, quasii.Point{10, 10, 10}), nil)
//
// NewQUASII takes ownership of the slice and reorganizes it in place; pass a
// copy if the order matters to you.
//
// # Baselines
//
// The package also exposes the paper's comparison systems under the same
// Index interface: a full Scan, a static Z-order curve index (NewSFC) and
// its incremental cracking variant (NewSFCracker), a uniform Grid with both
// replication and query-extension assignment, Mosaic (an incremental
// octree), a static Octree, and an STR bulk-loaded R-tree (NewRTree, which
// additionally offers k-nearest-neighbor search).
package quasii

import (
	"context"
	"io"
	"log/slog"
	"net/http"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/durable"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/gridfile"
	"repro/internal/mosaic"
	"repro/internal/octree"
	"repro/internal/repl"
	"repro/internal/rtree"
	"repro/internal/scan"
	"repro/internal/server"
	"repro/internal/sfc"
	"repro/internal/shard"
	"repro/internal/syncidx"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Geometric primitives, re-exported from the internal geometry package.
type (
	// Point is a point in 3-d space.
	Point = geom.Point
	// Box is an axis-aligned 3-d box with Min and Max corners.
	Box = geom.Box
	// Object is a spatial object: a bounding box plus a stable ID.
	Object = geom.Object
)

// Dims is the dimensionality of the spatial domain (3).
const Dims = geom.Dims

// NewBox returns the box spanning two corner points (normalized).
func NewBox(a, b Point) Box { return geom.NewBox(a, b) }

// BoxAt returns the cube with the given center and side length.
func BoxAt(center Point, side float64) Box { return geom.BoxAt(center, side) }

// MBB returns the minimum bounding box of the given objects.
func MBB(objs []Object) Box { return geom.MBB(objs) }

// Index is the query interface shared by every spatial index in this module.
// Query appends the IDs of all objects whose boxes intersect q to out and
// returns the extended slice. Incremental indexes (QUASII, SFCracker,
// Mosaic) refine themselves as a side effect of Query.
type Index interface {
	Len() int
	Query(q Box, out []int32) []int32
}

// QUASII, the paper's contribution.
type (
	// QUASII is the query-aware spatial incremental index (internal/core).
	QUASII = core.Index
	// QUASIIConfig configures QUASII; the zero value selects the paper's
	// defaults (τ = 60, lower-coordinate assignment).
	QUASIIConfig = core.Config
	// QUASIIStats reports the cumulative indexing work QUASII performed.
	QUASIIStats = core.Stats
	// QUASIIVersion is one immutable MVCC snapshot of a QUASII index's
	// update state, obtained from PinVersion and released with Release.
	// While pinned, its view survives appends, deletes, flushes and
	// checkpoints; SaveVersion serializes exactly that view.
	QUASIIVersion = core.Version
)

// AssignMode values for QUASIIConfig.Assign.
const (
	// AssignLower assigns objects to slices by their lower corner (default).
	AssignLower = core.AssignLower
	// AssignCenter assigns by the object's center (ablation).
	AssignCenter = core.AssignCenter
	// AssignUpper assigns by the object's upper corner (ablation; the
	// paper's footnote 1 notes it works equally).
	AssignUpper = core.AssignUpper
)

// QUASIINeighbor is one kNN result from QUASII.KNN (implemented with
// expanding range queries, refining the index as a side effect).
type QUASIINeighbor = core.Neighbor

// NewQUASII builds a QUASII index over data. The index takes ownership of
// the slice: queries reorganize it in place. Construction is O(n); all
// indexing work happens inside Query.
func NewQUASII(data []Object, cfg QUASIIConfig) *QUASII { return core.New(data, cfg) }

// Static and incremental baselines.
type (
	// RTree is the STR bulk-loaded R-tree (static reference index).
	RTree = rtree.Tree
	// RTreeConfig configures the R-tree (node capacity, default 60).
	RTreeConfig = rtree.Config
	// DynRTree is a dynamic (Guttman, quadratic-split) R-tree supporting
	// Insert and Delete — the one-at-a-time alternative STR is measured
	// against in the paper.
	DynRTree = rtree.DynTree
	// RStarTree is the R*-tree (Beckmann et al.): improved subtree choice,
	// margin-based splits and forced reinsertion — the refinement strategy
	// the paper's Sec. 5 weighs against QUASII's artificial slicing.
	RStarTree = rtree.RStar
	// Neighbor is one k-nearest-neighbor result from RTree.KNN.
	Neighbor = rtree.Neighbor
	// Grid is the uniform grid baseline.
	Grid = grid.Index
	// GridConfig configures the grid (resolution, assignment strategy).
	GridConfig = grid.Config
	// TwoLevelGrid is a two-level grid in the spirit of the two-level grid
	// file (Hinrichs): per-cell sub-grid resolution adapts to density,
	// sidestepping the single-resolution configuration problem of Fig. 6b.
	TwoLevelGrid = gridfile.Index
	// TwoLevelGridConfig configures the two-level grid.
	TwoLevelGridConfig = gridfile.Config
	// Mosaic is the space-oriented incremental baseline (query-driven octree).
	Mosaic = mosaic.Index
	// MosaicConfig configures Mosaic.
	MosaicConfig = mosaic.Config
	// Octree is the static octree substrate.
	Octree = octree.Tree
	// OctreeConfig configures the static octree.
	OctreeConfig = octree.Config
	// SFC is the static Z-order curve index.
	SFC = sfc.Index
	// SFCracker is the incremental cracking variant of SFC.
	SFCracker = sfc.Cracker
	// SFCConfig configures both SFC variants.
	SFCConfig = sfc.Config
	// Scan is the full-scan baseline.
	Scan = scan.Index
)

// Grid assignment strategies for GridConfig.Assign.
const (
	// GridQueryExtension assigns objects by center and extends queries.
	GridQueryExtension = grid.QueryExtension
	// GridReplication assigns objects to every overlapping cell.
	GridReplication = grid.Replication
)

// Space-filling curves for SFCConfig.Curve.
const (
	// CurveZOrder is the paper's curve choice for SFC/SFCracker (default).
	CurveZOrder = sfc.ZOrder
	// CurveHilbert trades encoding cost for strictly better locality.
	CurveHilbert = sfc.Hilbert
)

// NewRTree bulk-loads an R-tree over a copy of data using STR packing.
func NewRTree(data []Object, cfg RTreeConfig) *RTree { return rtree.New(data, cfg) }

// NewDynRTree returns an empty dynamic R-tree; add objects with Insert.
func NewDynRTree(cfg RTreeConfig) *DynRTree { return rtree.NewDyn(cfg) }

// NewDynRTreeFromData builds a dynamic R-tree by inserting every object in
// order (the pre-processing strategy STR bulk loading replaces).
func NewDynRTreeFromData(data []Object, cfg RTreeConfig) *DynRTree {
	return rtree.NewDynFromData(data, cfg)
}

// NewRStarTree returns an empty R*-tree; add objects with Insert.
func NewRStarTree(cfg RTreeConfig) *RStarTree { return rtree.NewRStar(cfg) }

// NewRStarTreeFromData builds an R*-tree by inserting every object in order.
func NewRStarTreeFromData(data []Object, cfg RTreeConfig) *RStarTree {
	return rtree.NewRStarFromData(data, cfg)
}

// NewGrid builds a uniform grid over data (referenced, not copied).
func NewGrid(data []Object, cfg GridConfig) *Grid { return grid.New(data, cfg) }

// NewTwoLevelGrid builds a two-level (density-adaptive) grid over data.
func NewTwoLevelGrid(data []Object, cfg TwoLevelGridConfig) *TwoLevelGrid {
	return gridfile.New(data, cfg)
}

// NewMosaic prepares a Mosaic incremental octree over data.
func NewMosaic(data []Object, cfg MosaicConfig) *Mosaic { return mosaic.New(data, cfg) }

// NewOctree builds a static octree over data.
func NewOctree(data []Object, cfg OctreeConfig) *Octree { return octree.New(data, cfg) }

// NewSFC builds the static Z-order index (transform + full sort).
func NewSFC(data []Object, cfg SFCConfig) *SFC { return sfc.New(data, cfg) }

// NewSFCracker prepares an SFCracker; the Z-order transformation is deferred
// to the first query, as in the paper.
func NewSFCracker(data []Object, cfg SFCConfig) *SFCracker { return sfc.NewCracker(data, cfg) }

// NewScan returns the full-scan baseline.
func NewScan(data []Object) *Scan { return scan.New(data) }

// Dataset and workload generators used by the paper's evaluation,
// re-exported for examples and downstream experiments.

// UniverseSide is the side length of the generators' cubic universe.
const UniverseSide = dataset.UniverseSide

// Universe returns the generators' cubic universe box.
func Universe() Box { return dataset.Universe() }

// UniformDataset generates the paper's synthetic dataset: n boxes uniform in
// the universe, 99 % with sides in [1,10] and 1 % in [10,1000].
func UniformDataset(n int, seed int64) []Object { return dataset.Uniform(n, seed) }

// NeuroConfig parameterizes the clustered neuroscience-like dataset.
type NeuroConfig = dataset.NeuroConfig

// NeuroDataset generates a skewed, clustered dataset standing in for the
// paper's rat-brain model (see DESIGN.md for the substitution rationale).
func NeuroDataset(n int, seed int64, cfg NeuroConfig) []Object {
	return dataset.Neuro(n, seed, cfg)
}

// CloneObjects returns a deep copy of objs — use it to share one dataset
// across indexes that reorganize their input in place.
func CloneObjects(objs []Object) []Object { return dataset.Clone(objs) }

// ClusteredQueries generates the paper's exploratory workload: clusters of
// cubic queries whose volume is selectivity × the universe volume, centered
// on the data.
func ClusteredQueries(data []Object, numClusters, perCluster int, selectivity, sigma float64, seed int64) []Box {
	return workload.ClusteredOn(dataset.Universe(), data, numClusters, perCluster, selectivity, sigma, seed)
}

// UniformQueries generates n uniformly placed cubic queries of the given
// selectivity.
func UniformQueries(n int, selectivity float64, seed int64) []Box {
	return workload.Uniform(dataset.Universe(), n, selectivity, seed)
}

// SequentialQueries generates a sweep of n adjacent queries marching across
// the universe along the given dimension — the "sequential" access pattern of
// the adaptive-indexing literature.
func SequentialQueries(n int, selectivity float64, dim int) []Box {
	return workload.Sequential(dataset.Universe(), n, selectivity, dim)
}

// ZipfQueries generates n queries whose centers follow a Zipfian hotspot
// distribution over cells of the universe — a heavily skewed exploratory
// pattern.
func ZipfQueries(n int, selectivity, skew float64, seed int64) []Box {
	return workload.Zipf(dataset.Universe(), n, selectivity, skew, seed)
}

// Synchronized wraps any index so it is safe for concurrent use. Incremental
// indexes mutate during Query, so even concurrent read-only workloads need
// this (or external locking).
type Synchronized = syncidx.Index

// Synchronize returns a concurrency-safe view of ix. All access must go
// through the returned wrapper from then on.
func Synchronize(ix Index) *Synchronized { return syncidx.Wrap(ix) }

// SynchronizedStatic wraps a static index with a read-write mutex so
// concurrent read-only queries proceed in parallel. Only correct for indexes
// whose Query does not mutate state (RTree, DynRTree, RStarTree, Grid,
// TwoLevelGrid, Octree, SFC, Scan); incremental indexes must use Synchronize.
type SynchronizedStatic = syncidx.RWIndex

// SynchronizeStatic returns a read-concurrent view of the static index ix.
// All access must go through the returned wrapper from then on.
func SynchronizeStatic(ix Index) *SynchronizedStatic { return syncidx.RWrap(ix) }

// The sharded parallel engine (internal/shard): spatial partitioning into P
// independently locked sub-indexes, giving both inter-query parallelism
// (queries on disjoint shards never contend) and intra-query fan-out.
type (
	// Sharded is the sharded parallel index. It satisfies Index, is safe
	// for concurrent use, and additionally offers QueryBatch and Stats.
	// Each shard sits behind a read-write lock: queries over converged
	// regions run through one shard concurrently on the sub-index's shared
	// read path, while cracking queries fall back to the exclusive lock
	// under a bounded crack budget (ShardedConfig.CrackBudget).
	Sharded = shard.Index
	// ShardedConfig configures sharding. The zero value selects GOMAXPROCS
	// shards, an equally sized worker pool, QUASII sub-indexes, and the
	// default per-query crack budget; see CrackBudget and
	// DisableSharedReads for the concurrency knobs.
	ShardedConfig = shard.Config
	// ShardedStats aggregates per-shard sizes and QUASII work counters
	// (Core.SharedQueries counts queries answered on the shared read path).
	ShardedStats = shard.Stats
	// ShardQueryable is the interface a custom ShardedConfig.New sub-index
	// constructor must return; every index in this package satisfies it.
	ShardQueryable = shard.Queryable
	// ShardSharedQueryable is the optional sub-index interface behind the
	// concurrent (read-locked) query path of the sharded engine. QUASII
	// sub-indexes satisfy it; custom constructors may too.
	ShardSharedQueryable = shard.SharedQueryable
)

// NewSharded partitions data into spatial shards (STR tiling) and builds one
// sub-index per shard. The input slice is copied; the caller keeps it.
// Beyond Query/QueryBatch, the sharded index accepts live updates (Insert,
// Delete, Flush) and kNN queries when its sub-indexes support them — the
// default QUASII sub-indexes do.
func NewSharded(data []Object, cfg ShardedConfig) *Sharded { return shard.New(data, cfg) }

// The network serving subsystem (internal/server): an HTTP/JSON query
// service over the sharded engine with request batching, admission control
// (429 backpressure instead of unbounded goroutine growth), live updates,
// and per-endpoint metrics. See cmd/quasii-serve for the standalone binary
// and cmd/quasii-loadgen for the matching load generator.
type (
	// Server is the HTTP query service. Mount Handler() into any
	// http.Server, or call ListenAndServe/Serve directly. Endpoints:
	// /query, /batch, /knn, /insert, /delete, /stats, /healthz, /readyz,
	// plus the introspection surface under /debug (index, heat, slowlog).
	Server = server.Server
	// ServerConfig tunes batching (BatchWindow, BatchLimit), admission
	// control (MaxInFlight, ExecSlots), update folding (FlushEvery), and
	// lifecycle logging (Logger, a *log/slog.Logger; nil discards).
	// The zero value is production-usable.
	ServerConfig = server.Config
	// ShardUpdatable is the optional sub-index interface behind
	// Sharded.Insert/Delete/Flush.
	ShardUpdatable = shard.Updatable
	// ShardNearestNeighborer is the optional sub-index interface behind
	// Sharded.KNN.
	ShardNearestNeighborer = shard.NearestNeighborer
)

// NewServer wires the HTTP query service over a sharded index.
func NewServer(ix *Sharded, cfg ServerConfig) *Server { return server.New(ix, cfg) }

// Observability (internal/telemetry): a dependency-free metrics registry
// rendered in Prometheus text format on the server's GET /metrics, plus
// sampled per-query stage tracing served at GET /debug/slowlog. The
// structural counterpart is the introspection layer: Index.Inspect and
// Sharded.Inspect snapshot the slice hierarchy with per-slice access heat
// (Config.HeatSampleEvery governs the sampling rate), and the server
// publishes it on GET /debug/index and GET /debug/heat. NewServer
// instruments the server and the engine automatically (on a private
// registry when ServerConfig.Telemetry is nil); pass an explicit registry —
// or use Server.Registry() — to put additional subsystems, most notably
// Store.Instrument, on the same scrape.
type (
	// MetricsRegistry collects counters, gauges and histograms and renders
	// the Prometheus text exposition. Safe for concurrent use.
	MetricsRegistry = telemetry.Registry
	// TraceEntry is one sampled slow-query trace as GET /debug/slowlog
	// serves it: per-stage timings, fan-out width, shared-vs-cracking probe
	// counts.
	TraceEntry = telemetry.TraceEntry
)

// NewMetricsRegistry builds an empty metrics registry, for sharing one
// scrape between the server (ServerConfig.Telemetry) and other subsystems.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// Persistence. A QUASII index is the accumulated side effect of the queries
// executed against it, so durability preserves the convergence those
// queries paid for: Save/Load snapshot a single index (the columnar v2
// format; v1 snapshots load transparently), Sharded.Snapshot/RestoreSharded
// do the same for the sharded engine (per-shard files plus a manifest), and
// OpenStore adds a write-ahead log on top so live updates survive a crash —
// recovery is the latest snapshot plus the WAL tail. See
// docs/ARCHITECTURE.md for the lifecycle.

// Save serializes ix to w in the columnar snapshot format, preserving the
// data lanes, the full slice hierarchy with its refinement state, and any
// buffered updates. Equivalent to ix.Save(w).
func Save(ix *QUASII, w io.Writer) error { return ix.Save(w) }

// Load reconstructs a QUASII index previously serialized with Save. Both
// the current columnar format and legacy (v1, gob-only) snapshots load.
func Load(r io.Reader) (*QUASII, error) { return core.Load(r) }

// RestoreSharded reassembles a sharded index from a snapshot directory
// written by Sharded.Snapshot. cfg supplies the runtime knobs exactly as
// for NewSharded; cfg.New must be nil (snapshots always decode into QUASII
// sub-indexes).
func RestoreSharded(dir string, cfg ShardedConfig) (*Sharded, error) {
	return shard.Restore(dir, cfg)
}

// The durable serving stack (internal/durable): a Store owns a sharded
// index, a data directory and a write-ahead log, keeping
// "durable state = latest snapshot + WAL tail" at all times.
type (
	// Store is a durable sharded index: Insert/Delete are logged before
	// they are acknowledged, Checkpoint writes a snapshot and truncates
	// the log, Close checkpoints so a restart needs no replay. Queries go
	// straight to Store.Index() — durability adds no read-path overhead.
	Store = durable.Store
	// StoreConfig configures OpenStore: engine knobs, the bootstrap
	// dataset, the fsync policy, and the automatic checkpoint cadence.
	StoreConfig = durable.Options
	// FsyncPolicy selects the WAL durability/latency trade-off.
	FsyncPolicy = durable.FsyncPolicy
)

// Fsync policies for StoreConfig.Fsync.
const (
	// FsyncAlways fsyncs every update before acknowledging it (default).
	FsyncAlways = durable.FsyncAlways
	// FsyncInterval fsyncs on a background cadence (StoreConfig.FsyncEvery).
	FsyncInterval = durable.FsyncInterval
	// FsyncNever leaves flushing to the operating system.
	FsyncNever = durable.FsyncNever
)

// OpenStore opens (or bootstraps) a durable store in dir: an existing
// snapshot is restored — every shard's accumulated refinement included —
// and the write-ahead log replayed; an empty directory is bootstrapped from
// cfg.Bootstrap and checkpointed before OpenStore returns.
func OpenStore(dir string, cfg StoreConfig) (*Store, error) { return durable.Open(dir, cfg) }

// Replication (internal/repl): WAL shipping from a leader's durable store
// to read replicas. A leader serves its latest checkpoint generation and
// streams WAL frames from any retained global sequence (mount it through
// ServerConfig.ReplSource); a follower bootstraps from the snapshot,
// replays, then tails the leader with bounded backoff, staying a durable
// store of its own so a restart resumes from local state. Promote flips a
// caught-up follower into a writable leader. See docs/ARCHITECTURE.md for
// the protocol and the guarantees.
type (
	// ReplLeader serves a store's state to followers over HTTP
	// (GET /repl/snapshot, GET /repl/wal). Satisfies ServerConfig.ReplSource.
	ReplLeader = repl.Leader
	// ReplFollower keeps a local durable store in sync with a leader.
	// Satisfies ServerConfig.ReplFollower.
	ReplFollower = repl.Follower
	// ReplFollowerConfig configures OpenReplFollower.
	ReplFollowerConfig = repl.FollowerOptions
	// ReplMetrics is the quasii_repl_* metric family, shared by both ends.
	ReplMetrics = repl.Metrics
	// ReplFaultRule selects which replication requests a fault transport
	// breaks, and how.
	ReplFaultRule = repl.FaultRule
	// ReplFaultTransport is an http.RoundTripper injecting deterministic
	// link faults (errors, stalls, truncation, corruption) — the
	// replication analogue of the durable layer's fault-injecting file
	// system, for tests and chaos harnesses.
	ReplFaultTransport = repl.FaultTransport
)

// Replication link fault kinds for ReplFaultRule.Kind.
const (
	// ReplFaultError fails the request outright.
	ReplFaultError = repl.FaultError
	// ReplFaultStall hangs the request until the client times out.
	ReplFaultStall = repl.FaultStall
	// ReplFaultTruncate cuts the response body mid-stream.
	ReplFaultTruncate = repl.FaultTruncate
	// ReplFaultCorrupt flips one bit of the response body.
	ReplFaultCorrupt = repl.FaultCorrupt
)

// NewReplLeader wires a replication leader over store. Metrics and logger
// may be nil.
func NewReplLeader(store *Store, m *ReplMetrics, logger *slog.Logger) *ReplLeader {
	return repl.NewLeader(store, m, logger)
}

// OpenReplFollower brings up a follower: resume from local state in
// cfg.Dir when present, otherwise bootstrap from the leader's snapshot
// (retrying until ctx expires), then tail the leader's WAL in the
// background. The returned follower is immediately readable via
// Store().Index().
func OpenReplFollower(ctx context.Context, cfg ReplFollowerConfig) (*ReplFollower, error) {
	return repl.Open(ctx, cfg)
}

// NewReplMetrics registers the full quasii_repl_* family on reg (nil
// returns nil, which every consumer treats as metrics-off). Both roles
// register every series, so dashboards can be written once.
func NewReplMetrics(reg *MetricsRegistry) *ReplMetrics { return repl.NewMetrics(reg) }

// NewReplFaultTransport wraps under (nil selects http.DefaultTransport)
// with deterministic, seeded fault injection driven by rules.
func NewReplFaultTransport(under http.RoundTripper, seed int64, rules ...ReplFaultRule) *ReplFaultTransport {
	return repl.NewFaultTransport(under, seed, rules...)
}

// Serve runs the HTTP query service over ix on addr until the listener
// fails. Equivalent to NewServer(ix, cfg).ListenAndServe(addr).
func Serve(addr string, ix *Sharded, cfg ServerConfig) error {
	return server.New(ix, cfg).ListenAndServe(addr)
}

// Compile-time interface checks: every index satisfies Index.
var (
	_ Index = (*QUASII)(nil)
	_ Index = (*RTree)(nil)
	_ Index = (*Grid)(nil)
	_ Index = (*Mosaic)(nil)
	_ Index = (*Octree)(nil)
	_ Index = (*SFC)(nil)
	_ Index = (*SFCracker)(nil)
	_ Index = (*Scan)(nil)
	_ Index = (*DynRTree)(nil)
	_ Index = (*RStarTree)(nil)
	_ Index = (*TwoLevelGrid)(nil)
	_ Index = (*Synchronized)(nil)
	_ Index = (*SynchronizedStatic)(nil)
	_ Index = (*Sharded)(nil)
)
