package quasii_test

import (
	"bytes"
	"testing"

	quasii "repro"
)

func TestBatchQueryMatchesSequential(t *testing.T) {
	data := quasii.UniformDataset(5000, 1101)
	tr := quasii.NewRTree(data, quasii.RTreeConfig{})
	queries := quasii.UniformQueries(200, 1e-3, 1102)

	seq := quasii.BatchQuery(tr, queries, 1)
	par := quasii.BatchQuery(tr, queries, 8)
	if len(seq) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if !equalIDs(sortedIDs(seq[i]), sortedIDs(par[i])) {
			t.Fatalf("query %d: sequential %d results, parallel %d", i, len(seq[i]), len(par[i]))
		}
	}
}

func TestBatchQueryDefaultsWorkers(t *testing.T) {
	data := quasii.UniformDataset(1000, 1103)
	tr := quasii.NewRTree(data, quasii.RTreeConfig{})
	queries := quasii.UniformQueries(10, 1e-2, 1104)
	res := quasii.BatchQuery(tr, queries, 0)
	if len(res) != 10 {
		t.Fatalf("got %d results", len(res))
	}
}

func TestBatchQueryEmptyWorkload(t *testing.T) {
	data := quasii.UniformDataset(100, 1105)
	tr := quasii.NewRTree(data, quasii.RTreeConfig{})
	if res := quasii.BatchQuery(tr, nil, 4); len(res) != 0 {
		t.Fatalf("got %d results for empty workload", len(res))
	}
}

func TestBatchQuerySynchronizedIncremental(t *testing.T) {
	// Run with -race: a Synchronize-wrapped QUASII must survive a parallel
	// batch and return correct results.
	data := quasii.UniformDataset(4000, 1106)
	oracle := quasii.NewScan(data)
	ix := quasii.Synchronize(quasii.NewQUASII(quasii.CloneObjects(data), quasii.QUASIIConfig{}))
	queries := quasii.UniformQueries(100, 1e-3, 1107)
	res := quasii.BatchQuery(ix, queries, 8)
	for i, q := range queries {
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(sortedIDs(res[i]), want) {
			t.Fatalf("query %d: got %d results, want %d", i, len(res[i]), len(want))
		}
	}
}

func TestSaveLoadQUASIIPublicAPI(t *testing.T) {
	data := quasii.UniformDataset(2000, 1108)
	ix := quasii.NewQUASII(quasii.CloneObjects(data), quasii.QUASIIConfig{})
	queries := quasii.UniformQueries(30, 1e-3, 1109)
	for _, q := range queries {
		ix.Query(q, nil)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := quasii.LoadQUASII(&buf)
	if err != nil {
		t.Fatal(err)
	}
	oracle := quasii.NewScan(data)
	for qi, q := range quasii.UniformQueries(30, 1e-3, 1110) {
		got := sortedIDs(loaded.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d after reload: got %d, want %d", qi, len(got), len(want))
		}
	}
}
