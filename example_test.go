package quasii_test

import (
	"fmt"

	quasii "repro"
)

// The basic lifecycle: build in O(n), query, let the index refine itself.
func ExampleNewQUASII() {
	objects := []quasii.Object{
		{Box: quasii.BoxAt(quasii.Point{5, 5, 5}, 2), ID: 1},
		{Box: quasii.BoxAt(quasii.Point{50, 50, 50}, 2), ID: 2},
		{Box: quasii.BoxAt(quasii.Point{8, 5, 5}, 2), ID: 3},
	}
	ix := quasii.NewQUASII(objects, quasii.QUASIIConfig{})
	hits := ix.Query(quasii.NewBox(quasii.Point{0, 0, 0}, quasii.Point{10, 10, 10}), nil)
	fmt.Println(len(hits), "objects intersect")
	// Output: 2 objects intersect
}

// Every index implements the same Index interface, so baselines swap in
// freely — here the STR bulk-loaded R-tree.
func ExampleNewRTree() {
	objects := []quasii.Object{
		{Box: quasii.BoxAt(quasii.Point{1, 1, 1}, 1), ID: 10},
		{Box: quasii.BoxAt(quasii.Point{9, 9, 9}, 1), ID: 20},
	}
	var ix quasii.Index = quasii.NewRTree(objects, quasii.RTreeConfig{})
	fmt.Println(ix.Query(quasii.BoxAt(quasii.Point{1, 1, 1}, 3), nil))
	// Output: [10]
}

// kNN on the R-tree uses best-first search over node boxes.
func ExampleRTree_KNN() {
	objects := []quasii.Object{
		{Box: quasii.BoxAt(quasii.Point{1, 1, 1}, 1), ID: 10},
		{Box: quasii.BoxAt(quasii.Point{5, 5, 5}, 1), ID: 20},
		{Box: quasii.BoxAt(quasii.Point{9, 9, 9}, 1), ID: 30},
	}
	tr := quasii.NewRTree(objects, quasii.RTreeConfig{})
	for _, nb := range tr.KNN(quasii.Point{0, 0, 0}, 2) {
		fmt.Println(nb.ID)
	}
	// Output:
	// 10
	// 20
}

// QUASII accepts new objects after construction; they are visible
// immediately and folded into the cracked array by Flush.
func ExampleQUASII_Append() {
	ix := quasii.NewQUASII([]quasii.Object{
		{Box: quasii.BoxAt(quasii.Point{1, 1, 1}, 1), ID: 1},
	}, quasii.QUASIIConfig{})
	ix.Append(quasii.Object{Box: quasii.BoxAt(quasii.Point{2, 2, 2}, 1), ID: 2})
	fmt.Println("len:", ix.Len(), "pending:", ix.Pending())
	ix.Flush()
	fmt.Println("len:", ix.Len(), "pending:", ix.Pending())
	// Output:
	// len: 2 pending: 1
	// len: 2 pending: 0
}

// Synchronize makes any index safe for concurrent use (incremental indexes
// mutate during Query, so this matters even for read-only workloads).
func ExampleSynchronize() {
	data := quasii.UniformDataset(100, 1)
	ix := quasii.Synchronize(quasii.NewQUASII(data, quasii.QUASIIConfig{}))
	n := len(ix.Query(quasii.Universe(), nil))
	fmt.Println(n)
	// Output: 100
}
